"""Work partitioning over tensors.

The paper's CPU parallelization is a single ``omp for`` over the input
tensors (Section V-E); these helpers reproduce OpenMP's static schedule
(contiguous near-equal chunks) plus an interleaved variant, so the executor
and its tests can verify both coverage and balance.

:func:`cost_weighted_partition` generalizes the static schedule to
per-item cost weights (the fleet feeds it kernel-plan flop estimates):
contiguous shards with near-equal *weight* rather than near-equal count,
via prefix-sum splitting.  Oversplitting — more shards than workers, fed
through a queue — is how the process fleet steals work when predicted
costs miss (see :mod:`repro.parallel.procfleet`).

Partitions that would emit empty shards (``workers > total``) raise the
typed :class:`PartitionError` instead of silently returning them; drivers
that can degrade gracefully clamp their worker count *before* partitioning.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PartitionError",
    "chunk_sizes",
    "cost_weighted_partition",
    "interleaved_partition",
    "static_partition",
]


class PartitionError(ValueError):
    """A partition request that can only be satisfied with empty shards
    (more workers than items).  Raised instead of silently emitting
    zero-length ranges, which historically produced idle workers and
    division-by-zero imbalance statistics downstream."""


def chunk_sizes(total: int, workers: int) -> list[int]:
    """Sizes of the static chunks: ``total`` items over ``workers`` chunks,
    first ``total % workers`` chunks one larger (OpenMP static)."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    if total < 0:
        raise ValueError(f"total must be nonnegative, got {total}")
    base, extra = divmod(total, workers)
    return [base + (1 if w < extra else 0) for w in range(workers)]


def static_partition(total: int, workers: int) -> list[range]:
    """Contiguous index ranges per worker (OpenMP ``schedule(static)``).

    Raises :class:`PartitionError` when ``workers > total`` — every
    partition would contain an empty shard.
    """
    if workers > total:
        raise PartitionError(
            f"cannot partition {total} items into {workers} non-empty "
            f"shards; clamp workers to at most {total}")
    sizes = chunk_sizes(total, workers)
    out: list[range] = []
    start = 0
    for size in sizes:
        out.append(range(start, start + size))
        start += size
    return out


def cost_weighted_partition(weights, workers: int) -> list[range]:
    """Contiguous index ranges with near-equal total *weight*.

    ``weights`` is one nonnegative finite cost per item (e.g. per-tensor
    flop estimates).  Shard boundaries sit where the prefix sum crosses
    the ``k/workers`` fractions of the total weight, pinched so every
    shard stays non-empty; uniform weights reproduce a balanced static
    schedule.  Raises :class:`PartitionError` when ``workers > len(weights)``.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError(f"weights must be 1-D, got shape {w.shape}")
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    total = w.shape[0]
    if workers > total:
        raise PartitionError(
            f"cannot partition {total} items into {workers} non-empty "
            f"shards; clamp workers to at most {total}")
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise ValueError("weights must be finite and nonnegative")
    if w.sum() <= 0:
        return static_partition(total, workers)
    prefix = np.cumsum(w)
    bounds = [0]
    for k in range(1, workers):
        target = prefix[-1] * k / workers
        cut = int(np.searchsorted(prefix, target, side="left")) + 1
        # non-empty on both sides: past the previous bound, and leaving at
        # least one item for each remaining shard
        cut = min(max(cut, bounds[-1] + 1), total - (workers - k))
        bounds.append(cut)
    bounds.append(total)
    return [range(a, b) for a, b in zip(bounds, bounds[1:])]


def interleaved_partition(total: int, workers: int) -> list[np.ndarray]:
    """Cyclic index assignment (OpenMP ``schedule(static, 1)``): worker ``w``
    gets indices ``w, w+workers, w+2*workers, ...``."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    return [np.arange(w, total, workers) for w in range(workers)]
