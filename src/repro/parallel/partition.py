"""Work partitioning over tensors.

The paper's CPU parallelization is a single ``omp for`` over the input
tensors (Section V-E); these helpers reproduce OpenMP's static schedule
(contiguous near-equal chunks) plus an interleaved variant, so the executor
and its tests can verify both coverage and balance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["static_partition", "interleaved_partition", "chunk_sizes"]


def chunk_sizes(total: int, workers: int) -> list[int]:
    """Sizes of the static chunks: ``total`` items over ``workers`` chunks,
    first ``total % workers`` chunks one larger (OpenMP static)."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    if total < 0:
        raise ValueError(f"total must be nonnegative, got {total}")
    base, extra = divmod(total, workers)
    return [base + (1 if w < extra else 0) for w in range(workers)]


def static_partition(total: int, workers: int) -> list[range]:
    """Contiguous index ranges per worker (OpenMP ``schedule(static)``)."""
    sizes = chunk_sizes(total, workers)
    out: list[range] = []
    start = 0
    for size in sizes:
        out.append(range(start, start + size))
        start += size
    return out


def interleaved_partition(total: int, workers: int) -> list[np.ndarray]:
    """Cyclic index assignment (OpenMP ``schedule(static, 1)``): worker ``w``
    gets indices ``w, w+workers, w+2*workers, ...``."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    return [np.arange(w, total, workers) for w in range(workers)]
