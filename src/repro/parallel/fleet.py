"""T-axis sharding for the fleet engine.

The fleet scheduler (:func:`repro.engine.fleet.fleet_solve`) already
vectorizes every (tensor, start) lane of its workload; this driver splits
the *tensor* axis into contiguous shards and runs one fleet per worker
thread, the same partition/merge discipline as
:func:`repro.parallel.executor.parallel_multistart_sshopm`: shared
starting-vector set, per-worker metrics registries merged into the
caller's after the pool drains, per-worker recorder traces absorbed under
``worker0``, ``worker1``, ... nodes.  All shards resolve their kernels
from the same process-wide plan cache, so the plan is built once no
matter how many workers run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SolveConfig
from repro.core.multistart import starting_vectors
from repro.core.results import FleetResult
from repro.instrument import Recorder, current_recorder
from repro.instrument import span as _span
from repro.instrument.metrics import MetricsRegistry, get_registry, use_registry
from repro.parallel.partition import static_partition
from repro.symtensor.storage import SymmetricTensorBatch

__all__ = ["FleetRunReport", "parallel_fleet_solve"]


@dataclass
class FleetRunReport:
    """A merged fleet result plus execution metadata.

    ``shard_sizes`` lists how many tensors each worker solved;
    ``shard_seconds`` the per-shard wall times (their spread shows load
    imbalance the static partition could not avoid).
    """

    result: FleetResult
    workers: int
    seconds: float
    shard_sizes: list[int]
    shard_seconds: list[float] = field(default_factory=list)


def parallel_fleet_solve(
    tensors: SymmetricTensorBatch,
    workers: int = 1,
    num_starts: int = 32,
    alpha: float = 0.0,
    tol: float = 1e-10,
    max_iters: int = 500,
    starts: np.ndarray | None = None,
    scheme: str = "random",
    variant: str = "vectorized",
    dtype=np.float64,
    rng=None,
    config: SolveConfig | None = None,
    *,
    backend: str | None = None,
    adaptive: bool = False,
    compact_every: int = 8,
    guards=None,
) -> FleetRunReport:
    """Shard ``tensors`` over ``workers`` threads, one fleet per shard.

    Parameters are those of :func:`repro.engine.fleet.fleet_solve`; every
    shard shares one starting-vector set, so the merged ``(T, V)`` result
    equals a single-worker fleet run with the same starts (shard
    boundaries change lane scheduling, not fixed points).
    """
    from repro.engine.fleet import fleet_solve

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if starts is None:
        starts = starting_vectors(num_starts, tensors.n, scheme=scheme,
                                  rng=rng, dtype=dtype)
    ranges = [r for r in static_partition(len(tensors), workers) if len(r) > 0]
    parent = current_recorder()
    t0 = time.perf_counter()

    def solve_shard(r: range):
        worker_reg = MetricsRegistry()
        worker_rec = Recorder() if parent is not None else None
        shard = tensors.subset(np.arange(r.start, r.stop))
        ts = time.perf_counter()
        with use_registry(worker_reg):

            def run():
                return fleet_solve(
                    shard,
                    alpha=alpha,
                    tol=tol,
                    max_iters=max_iters,
                    starts=starts,
                    variant=variant,
                    backend=backend,
                    dtype=dtype,
                    config=config,
                    adaptive=adaptive,
                    compact_every=compact_every,
                    guards=guards,
                )

            if worker_rec is not None:
                with worker_rec.activate():
                    res = run()
            else:
                res = run()
        return res, worker_rec, worker_reg, time.perf_counter() - ts

    with _span("parallel_fleet_solve"):
        if len(ranges) == 1:
            # degenerate single shard: skip the pool, keep caller's registry
            res = fleet_solve(
                tensors, alpha=alpha, tol=tol, max_iters=max_iters,
                starts=starts, variant=variant, backend=backend, dtype=dtype,
                config=config,
                adaptive=adaptive, compact_every=compact_every, guards=guards,
            )
            return FleetRunReport(
                result=res, workers=1,
                seconds=time.perf_counter() - t0,
                shard_sizes=[len(ranges[0])],
                shard_seconds=[time.perf_counter() - t0],
            )

        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
            outs = list(pool.map(solve_shard, ranges))

        caller_reg = get_registry()
        if parent is not None:
            parent.gauge("parallel.workers", len(ranges))
            parent.gauge("parallel.shard_sizes", [len(r) for r in ranges])
            for wid, (_, worker_rec, _, _) in enumerate(outs):
                if worker_rec is not None:
                    parent.absorb(worker_rec, under=f"worker{wid}")
        for _, _, worker_reg, _ in outs:
            caller_reg.merge(worker_reg)

    parts = [o[0] for o in outs]
    merged = FleetResult(
        eigenvalues=np.concatenate([p.eigenvalues for p in parts], axis=0),
        eigenvectors=np.concatenate([p.eigenvectors for p in parts], axis=0),
        converged=np.concatenate([p.converged for p in parts], axis=0),
        iterations=np.concatenate([p.iterations for p in parts], axis=0),
        sweeps=max(p.sweeps for p in parts),
        failed=np.concatenate([p.failed for p in parts], axis=0),
        shifts=np.concatenate([p.shifts for p in parts], axis=0),
        variant=parts[0].variant,
        compactions=sum(p.compactions for p in parts),
        tensors=tensors,
    )
    return FleetRunReport(
        result=merged,
        workers=len(ranges),
        seconds=time.perf_counter() - t0,
        shard_sizes=[len(r) for r in ranges],
        shard_seconds=[o[3] for o in outs],
    )
