"""T-axis sharding for the fleet engine, over thread or process workers.

The fleet scheduler (:func:`repro.engine.fleet.fleet_solve`) already
vectorizes every (tensor, start) lane of its workload; this driver splits
the *tensor* axis into contiguous shards and runs one fleet per worker.
Two executor tiers share the partition/merge discipline:

``executor="thread"``
    One fleet per worker thread (the historical behavior).  Cheap to
    start and zero-copy by construction, but numpy dispatch serializes on
    the GIL, so scaling is bounded by the fraction of each sweep spent
    inside GIL-releasing kernels.
``executor="process"``
    Persistent worker processes over a zero-copy shared-memory tensor
    store (:mod:`repro.parallel.shm`, :mod:`repro.parallel.procfleet`).
    Tensor payload is published once; shard *descriptors* go through a
    work queue (which doubles as work stealing when the batch is
    oversplit — see ``steal=``), and results land in a preallocated
    shared block, so pipe traffic is O(result metadata) per shard.
``executor="auto"``
    Picks a tier via the communication cost model in
    :mod:`repro.parallel.comm` (bytes moved vs. flops computed, after the
    block-partitioned Symv analysis of arXiv:2506.15488).

Either way every shard shares one starting-vector set and all shards
resolve kernels from the same plan cache, so the merged ``(T, V)`` result
is bit-for-bit the single-worker fleet result.  Shards are cut by
:func:`~repro.parallel.partition.cost_weighted_partition` fed with
per-tensor kernel-plan flop estimates; worker counts exceeding the batch
size are clamped with a warning (the partition itself refuses empty
shards with a typed :class:`~repro.parallel.partition.PartitionError`).

Observability: both tiers feed one coherent trace — thread workers'
recorders are absorbed directly, process workers serialize their span
trees through the result queue and the parent stitches them under
``workerN`` (see ``FleetRunReport.workers_traced``) — and both tiers
spool typed events (``events=`` or an ambient
:func:`~repro.instrument.events.use_spool`) that ``repro top`` renders
live.  See ``docs/events.md``.
"""

from __future__ import annotations

import contextlib
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SolveConfig, resolve_option
from repro.core.multistart import starting_vectors
from repro.core.results import FleetResult
from repro.instrument import Recorder, current_recorder
from repro.instrument import span as _span
from repro.instrument.events import (
    EventSpool,
    current_spool,
    emit as _emit,
    use_spool,
)
from repro.instrument.log import get_logger
from repro.instrument.metrics import MetricsRegistry, get_registry, use_registry
from repro.parallel.comm import EXECUTORS, choose_executor, estimate_fleet_comm
from repro.parallel.partition import cost_weighted_partition
from repro.symtensor.storage import SymmetricTensorBatch

__all__ = [
    "STEAL_IMBALANCE_THRESHOLD",
    "STEAL_SPLIT_FACTOR",
    "FleetRunReport",
    "parallel_fleet_solve",
]

#: ``imbalance()`` (max/mean shard seconds) above which the auto stealing
#: heuristic considers a static shard-per-worker split too lopsided and
#: oversplits the batch into a stealable queue instead.
STEAL_IMBALANCE_THRESHOLD = 1.25

#: Sub-shards per worker when stealing is on: small enough to keep
#: per-shard descriptor/metadata overhead negligible, large enough that a
#: worker whose tensors converge early keeps pulling work.
STEAL_SPLIT_FACTOR = 4

_log = get_logger("parallel.fleet")


@dataclass
class FleetRunReport:
    """A merged fleet result plus execution metadata.

    ``shard_sizes`` lists how many tensors each shard covered;
    ``shard_seconds`` the per-shard wall times (their spread is the load
    imbalance the partition could not avoid — see :meth:`imbalance`).
    ``executor`` is the tier that actually ran (``"auto"`` resolves
    before execution); ``requeues``/``failed_shards`` mirror the hardened
    thread executor's crash accounting for the process tier.
    ``workers_traced`` counts the worker span subtrees stitched into the
    caller's trace (0 when tracing was off or the run was a degenerate
    single shard; for the process tier a worker SIGKILLed before sending
    its exit message cannot be counted).
    """

    result: FleetResult
    workers: int
    seconds: float
    shard_sizes: list[int]
    shard_seconds: list[float] = field(default_factory=list)
    executor: str = "thread"
    requeues: int = 0
    failed_shards: list[int] = field(default_factory=list)
    workers_traced: int = 0

    def imbalance(self) -> float:
        """Load imbalance of the run: max/mean of ``shard_seconds``.

        1.0 is perfect balance; values above
        :data:`STEAL_IMBALANCE_THRESHOLD` are what the auto stealing
        heuristic exists to fix (rerun with ``steal=True`` or more
        shards).  NaN when no shard timings were recorded.
        """
        if not self.shard_seconds:
            return float("nan")
        mean = sum(self.shard_seconds) / len(self.shard_seconds)
        if mean <= 0:
            return 1.0
        return max(self.shard_seconds) / mean


def _shard_weights(tensors: SymmetricTensorBatch, num_starts: int) -> np.ndarray:
    """Per-tensor cost estimates feeding the cost-weighted partition:
    the analytic kernel-plan flop count ``2 m U`` per lane application
    times the tensor's ``V`` lanes.  Uniform for a homogeneous batch —
    where the weighting earns its keep is oversplit stealing queues and
    future mixed workloads."""
    U = tensors.values.shape[1]
    return np.full(len(tensors), 2.0 * tensors.m * U * num_starts)


def _stitch_worker_traces(parent: Recorder, traces: dict,
                          *, stacklevel: int = 4) -> int:
    """Absorb per-worker span payloads under ``workerN``; returns the
    count stitched.

    A payload that fails to deserialize is discarded with a single
    caller-blamed :class:`RuntimeWarning` (never silently) — the other
    workers' subtrees still land, so one corrupt pickle degrades the
    trace instead of voiding it.
    """
    stitched = 0
    warned = False
    for wid in sorted(traces):
        doc = traces[wid]
        if doc is None:
            continue
        try:
            rec = Recorder.from_dict(doc)
        except Exception as exc:
            if not warned:
                warned = True
                warnings.warn(
                    f"discarding undecodable span payload from fleet "
                    f"worker {wid} ({exc}); its subtree is missing from "
                    f"the stitched trace",
                    RuntimeWarning, stacklevel=stacklevel)
            _log.warning("undecodable worker span payload",
                         fields={"worker": wid, "error": str(exc)})
            continue
        parent.absorb(rec, under=f"worker{wid}")
        stitched += 1
    return stitched


def parallel_fleet_solve(
    tensors: SymmetricTensorBatch,
    workers: int = 1,
    num_starts: int = 32,
    alpha: float = 0.0,
    tol: float = 1e-10,
    max_iters: int = 500,
    starts: np.ndarray | None = None,
    scheme: str = "random",
    variant: str = "vectorized",
    dtype=np.float64,
    rng=None,
    config: SolveConfig | None = None,
    *,
    backend: str | None = None,
    adaptive: bool | str = False,
    compact_every: int = 8,
    guards=None,
    executor: str | None = None,
    steal: bool | None = None,
    start_method: str | None = None,
    max_requeues: int = 2,
    faults: dict | None = None,
    events: str | None = None,
    stop=None,
    deadline: float | None = None,
) -> FleetRunReport:
    """Shard ``tensors`` over ``workers``, one fleet per shard.

    Parameters are those of :func:`repro.engine.fleet.fleet_solve`; every
    shard shares one starting-vector set, so the merged ``(T, V)`` result
    is bit-for-bit a single-worker fleet run with the same starts (shard
    boundaries change lane scheduling, not arithmetic).  The tier-specific
    ones:

    executor : ``"thread"`` (default), ``"process"`` (zero-copy
        shared-memory worker processes), or ``"auto"`` (cost-model pick);
        also settable via ``SolveConfig.executor``.
    steal : oversplit the batch into ``STEAL_SPLIT_FACTOR`` sub-shards
        per worker so the process tier's work queue behaves as work
        stealing.  ``None`` (auto) enables it when the cost-weighted
        partition itself predicts imbalance above
        :data:`STEAL_IMBALANCE_THRESHOLD`.
    start_method : multiprocessing start method for the process tier
        (default: ``fork`` where available).
    max_requeues / faults : crash budget and chaos injection for the
        process tier (``faults`` maps shard id → ``"crash"``/``"kill"``),
        mirroring the hardened thread executor.
    events : path of a per-run JSONL event spool
        (:mod:`repro.instrument.events`; also settable via
        ``SolveConfig.events``).  Ignored when a spool is already active
        via :func:`~repro.instrument.events.use_spool` — the ambient
        spool wins, so one CLI-opened spool covers nested solves.
        ``repro top <path>`` renders the stream live.
    stop : optional zero-argument callable forwarded to every shard's
        :func:`~repro.engine.fleet.fleet_solve` — polled once per sweep;
        when truthy the whole run cancels cleanly through the
        lane-retirement path and the merged result has ``stopped=True``.
        For the process tier the parent polls it and relays cancellation
        to the workers through a shared event (callables don't pickle).
    deadline : optional absolute epoch time (``time.time()`` scale); at
        the deadline the run cancels exactly like ``stop`` firing.  Works
        on every tier — process workers check it directly, so a deadline
        holds even if the parent thread stalls.  Also settable via
        ``SolveConfig.deadline``.
    """
    from repro.engine.fleet import fleet_solve

    deadline = resolve_option("deadline", deadline, config, None)
    if deadline is not None:
        user_stop = stop

        def stop(_user_stop=user_stop, _deadline=deadline):
            if _user_stop is not None and _user_stop():
                return True
            return time.time() >= _deadline


    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    T = len(tensors)
    if workers > T:
        warnings.warn(
            f"workers={workers} exceeds the batch size T={T}; clamping to "
            f"{T} (extra workers would own empty shards)",
            RuntimeWarning, stacklevel=2)
        workers = max(1, T)
    executor = resolve_option("executor", executor, config, "thread")
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS}, got {executor!r}")
    if starts is None:
        starts = starting_vectors(num_starts, tensors.n, scheme=scheme,
                                  rng=rng, dtype=dtype)

    weights = _shard_weights(tensors, starts.shape[0])
    if executor == "auto":
        estimate = estimate_fleet_comm(
            T, tensors.values.shape[1], starts.shape[0], tensors.n,
            workers, m=tensors.m, sweeps=max_iters // 4 or 1)
        choice = choose_executor(estimate)
        executor = choice.executor
    if executor == "process":
        from repro.parallel.shm import SHM_AVAILABLE

        if not SHM_AVAILABLE:  # pragma: no cover - exotic builds only
            warnings.warn(
                "multiprocessing.shared_memory unavailable; falling back "
                "to the thread executor", RuntimeWarning, stacklevel=2)
            executor = "thread"

    parent = current_recorder()
    t0 = time.perf_counter()
    V = starts.shape[0]

    with contextlib.ExitStack() as _stack:
        spool = current_spool()
        if spool is None:
            events_path = resolve_option("events", events, config, None)
            if events_path:
                spool = _stack.enter_context(
                    EventSpool.open(events_path, src="parent"))
                _stack.enter_context(use_spool(spool))

        if workers == 1 or T == 1:
            # degenerate single shard: run inline, skip any pool
            _emit("run_start", tensors=T, lanes=T * V, workers=1, shards=1,
                  executor="inline", ranges=[[0, T]])
            _emit("shard_start", shard=0, lo=0, hi=T)
            res = fleet_solve(
                tensors, alpha=alpha, tol=tol, max_iters=max_iters,
                starts=starts, variant=variant, backend=backend, dtype=dtype,
                config=config,
                adaptive=adaptive, compact_every=compact_every, guards=guards,
                stop=stop,
            )
            elapsed = time.perf_counter() - t0
            _emit("shard_finish", shard=0, seconds=elapsed, sweeps=res.sweeps)
            _emit("run_finish", seconds=elapsed, requeues=0, failed=0)
            return FleetRunReport(
                result=res, workers=1, seconds=elapsed,
                shard_sizes=[T], shard_seconds=[elapsed], executor=executor,
            )

        if executor == "process":
            return _process_tier(
                tensors, workers, starts, weights, alpha=alpha, tol=tol,
                max_iters=max_iters, variant=variant, backend=backend,
                dtype=dtype, config=config, adaptive=adaptive,
                compact_every=compact_every, guards=guards, steal=steal,
                start_method=start_method, max_requeues=max_requeues,
                faults=faults, parent=parent, t0=t0,
                stop=stop, deadline=deadline)

        ranges = cost_weighted_partition(weights, workers)
        _emit("run_start", tensors=T, lanes=T * V, workers=len(ranges),
              shards=len(ranges), executor="thread",
              ranges=[[r.start, r.stop] for r in ranges])

        def solve_shard(item):
            wid, r = item
            worker_reg = MetricsRegistry()
            worker_rec = Recorder() if parent is not None else None
            worker_spool = spool.bound(f"t{wid}") if spool is not None else None
            shard = tensors.subset(np.arange(r.start, r.stop))
            ts = time.perf_counter()
            with use_registry(worker_reg), use_spool(worker_spool):
                _emit("shard_start", shard=wid, lo=r.start, hi=r.stop)

                def run():
                    return fleet_solve(
                        shard,
                        alpha=alpha,
                        tol=tol,
                        max_iters=max_iters,
                        starts=starts,
                        variant=variant,
                        backend=backend,
                        dtype=dtype,
                        config=config,
                        adaptive=adaptive,
                        compact_every=compact_every,
                        guards=guards,
                        stop=stop,
                    )

                if worker_rec is not None:
                    with worker_rec.activate():
                        res = run()
                else:
                    res = run()
                seconds = time.perf_counter() - ts
                _emit("shard_finish", shard=wid, seconds=seconds,
                      sweeps=res.sweeps)
            return res, worker_rec, worker_reg, seconds

        workers_traced = 0
        with _span("parallel_fleet_solve"):
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
                outs = list(pool.map(solve_shard, enumerate(ranges)))

            caller_reg = get_registry()
            if parent is not None:
                parent.gauge("parallel.workers", len(ranges))
                parent.gauge("parallel.executor", "thread")
                parent.gauge("parallel.shard_sizes", [len(r) for r in ranges])
                for wid, (_, worker_rec, _, _) in enumerate(outs):
                    if worker_rec is not None:
                        parent.absorb(worker_rec, under=f"worker{wid}")
                        workers_traced += 1
            for _, _, worker_reg, _ in outs:
                caller_reg.merge(worker_reg)

        parts = [o[0] for o in outs]
        merged = FleetResult(
            eigenvalues=np.concatenate([p.eigenvalues for p in parts], axis=0),
            eigenvectors=np.concatenate([p.eigenvectors for p in parts], axis=0),
            converged=np.concatenate([p.converged for p in parts], axis=0),
            iterations=np.concatenate([p.iterations for p in parts], axis=0),
            sweeps=max(p.sweeps for p in parts),
            failed=np.concatenate([p.failed for p in parts], axis=0),
            shifts=np.concatenate([p.shifts for p in parts], axis=0),
            variant=parts[0].variant,
            compactions=sum(p.compactions for p in parts),
            stopped=any(p.stopped for p in parts),
            tensors=tensors,
        )
        elapsed = time.perf_counter() - t0
        _emit("run_finish", seconds=elapsed, requeues=0, failed=0)
        _log.info("thread fleet run finished",
                  fields={"workers": len(ranges), "seconds": elapsed})
        return FleetRunReport(
            result=merged,
            workers=len(ranges),
            seconds=elapsed,
            shard_sizes=[len(r) for r in ranges],
            shard_seconds=[o[3] for o in outs],
            executor="thread",
            workers_traced=workers_traced,
        )


def _predicted_imbalance(weights: np.ndarray, ranges) -> float:
    """Max/mean shard weight of a partition — the up-front analog of
    :meth:`FleetRunReport.imbalance` the stealing heuristic checks."""
    sums = [float(weights[r.start:r.stop].sum()) for r in ranges]
    mean = sum(sums) / len(sums)
    return max(sums) / mean if mean > 0 else 1.0


def _process_tier(tensors, workers, starts, weights, *, alpha, tol,
                  max_iters, variant, backend, dtype, config, adaptive,
                  compact_every, guards, steal, start_method, max_requeues,
                  faults, parent, t0, stop=None,
                  deadline=None) -> FleetRunReport:
    """Resolve process-tier options and delegate to
    :func:`repro.parallel.procfleet.process_fleet_solve`."""
    from repro.parallel.procfleet import process_fleet_solve

    T = len(tensors)
    ranges = cost_weighted_partition(weights, workers)
    if steal is None:
        # auto: oversplit when even the *predicted* shard weights are
        # lopsided past the threshold (e.g. T not divisible by workers)
        steal = (_predicted_imbalance(weights, ranges)
                 > STEAL_IMBALANCE_THRESHOLD)
    if steal:
        shards = cost_weighted_partition(
            weights, min(T, workers * STEAL_SPLIT_FACTOR))
    else:
        shards = ranges

    # workers receive primitives, not a config: resolve the config-backed
    # options here exactly as fleet_solve would
    variant_r = resolve_option("backend", variant, config, "vectorized")
    backend_r = resolve_option("codegen_backend", backend, config, "numpy")
    guards_r = resolve_option("guards", guards, config, None)

    workers_traced = 0
    with _span("parallel_fleet_solve"):
        result, info = process_fleet_solve(
            tensors, shards, starts, workers=workers, alpha=alpha, tol=tol,
            max_iters=max_iters, variant=variant_r, backend=backend_r,
            dtype=dtype, adaptive=adaptive, compact_every=compact_every,
            guards=guards_r, start_method=start_method,
            max_requeues=max_requeues, faults=faults,
            stop=stop, deadline=deadline,
        )
        if parent is not None:
            parent.gauge("parallel.workers", workers)
            parent.gauge("parallel.executor", "process")
            parent.gauge("parallel.shard_sizes", info["shard_sizes"])
            parent.gauge("parallel.steal", bool(steal))
            workers_traced = _stitch_worker_traces(
                parent, info.get("worker_traces", {}))
            parent.gauge("parallel.workers_traced", workers_traced)
    return FleetRunReport(
        result=result,
        workers=workers,
        seconds=time.perf_counter() - t0,
        shard_sizes=info["shard_sizes"],
        shard_seconds=info["shard_seconds"],
        executor="process",
        requeues=info["requeues"],
        failed_shards=info["failed_shards"],
        workers_traced=workers_traced,
    )
