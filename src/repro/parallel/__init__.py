"""CPU-parallel substrate: partitioning, a multi-worker driver, and the
calibrated OpenMP-scaling performance model."""

from repro.parallel.cpumodel import (
    DEFAULT_CPU_PARAMS,
    CpuPerfParams,
    CpuPrediction,
    predict_cpu_sshopm,
    speedup_curve,
)
from repro.parallel.executor import ParallelRunReport, parallel_multistart_sshopm
from repro.parallel.fleet import FleetRunReport, parallel_fleet_solve
from repro.parallel.partition import chunk_sizes, interleaved_partition, static_partition

__all__ = [
    "DEFAULT_CPU_PARAMS",
    "CpuPerfParams",
    "CpuPrediction",
    "predict_cpu_sshopm",
    "speedup_curve",
    "FleetRunReport",
    "ParallelRunReport",
    "parallel_fleet_solve",
    "parallel_multistart_sshopm",
    "chunk_sizes",
    "interleaved_partition",
    "static_partition",
]
