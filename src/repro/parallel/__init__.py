"""CPU-parallel substrate: partitioning, thread/process fleet drivers, a
zero-copy shared-memory tensor store, the communication cost model behind
``executor="auto"``, and the calibrated OpenMP-scaling performance model."""

from repro.parallel.comm import (
    EXECUTORS,
    ExecutorChoice,
    FleetCommEstimate,
    choose_executor,
    estimate_fleet_comm,
)
from repro.parallel.cpumodel import (
    DEFAULT_CPU_PARAMS,
    CpuPerfParams,
    CpuPrediction,
    predict_cpu_sshopm,
    speedup_curve,
)
from repro.parallel.executor import ParallelRunReport, parallel_multistart_sshopm
from repro.parallel.fleet import (
    STEAL_IMBALANCE_THRESHOLD,
    FleetRunReport,
    parallel_fleet_solve,
)
from repro.parallel.partition import (
    PartitionError,
    chunk_sizes,
    cost_weighted_partition,
    interleaved_partition,
    static_partition,
)
from repro.parallel.shm import (
    SHM_AVAILABLE,
    SharedResultBlock,
    SharedTensorStore,
)

__all__ = [
    "DEFAULT_CPU_PARAMS",
    "EXECUTORS",
    "SHM_AVAILABLE",
    "STEAL_IMBALANCE_THRESHOLD",
    "CpuPerfParams",
    "CpuPrediction",
    "ExecutorChoice",
    "FleetCommEstimate",
    "FleetRunReport",
    "ParallelRunReport",
    "PartitionError",
    "SharedResultBlock",
    "SharedTensorStore",
    "choose_executor",
    "chunk_sizes",
    "cost_weighted_partition",
    "estimate_fleet_comm",
    "interleaved_partition",
    "parallel_fleet_solve",
    "parallel_multistart_sshopm",
    "predict_cpu_sshopm",
    "speedup_curve",
    "static_partition",
]
