"""Process tier of the parallel fleet: persistent workers over a
zero-copy shared tensor store.

The thread tier (:mod:`repro.parallel.fleet`) serializes numpy dispatch
on the GIL; this tier runs one OS process per worker instead, and keeps
every byte of tensor payload out of the pipes:

* the parent publishes the batch + starts + kernel tables into a
  :class:`~repro.parallel.shm.SharedTensorStore` and preallocates a
  :class:`~repro.parallel.shm.SharedResultBlock` (both unlinked in a
  ``finally``, whatever happens);
* persistent workers attach by name, warm the kernel plan once (table
  arrays from the store, codegen through the on-disk plan cache), then
  pull shard *descriptors* — ``(shard_id, lo, hi)`` index ranges — from
  a work queue until they drain it.  Oversplitting the batch into more
  shards than workers turns the queue into work stealing: a worker whose
  shards converge early simply pulls more;
* each shard's results are written in place through
  ``fleet_solve(out=block.workspace(lo, hi))``; the completion message is
  a dict of floats.  Per-worker metrics come back as one registry
  snapshot at exit and merge through the standard snapshot/merge path.

Crash discipline matches the hardened thread executor: a worker that
dies mid-shard (or raises, e.g. an injected
:class:`~repro.resilience.faults.InjectedWorkerCrash`) gets its claimed
shard requeued on the survivors up to ``max_requeues`` times — run
inline in the parent if nobody survives — and a shard that exhausts its
budget is written off as NaN/failed placeholder rows, never silently
dropped.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import pickle
import signal
import time
import warnings
from queue import Empty

import numpy as np

from repro.core.results import FleetResult
from repro.engine.fleet import fleet_solve
from repro.instrument import Recorder, current_recorder
from repro.instrument import span as _wspan
from repro.instrument.events import (
    EventSpool,
    current_spool,
    emit as _emit,
    use_spool,
)
from repro.instrument.log import get_logger, log_context
from repro.instrument.metrics import (
    MetricsRegistry,
    get_registry,
    observe_ipc_payload,
    observe_queue_wait,
    use_registry,
)
from repro.parallel.shm import SharedResultBlock, SharedTensorStore
from repro.symtensor.storage import SymmetricTensorBatch

__all__ = ["default_start_method", "process_fleet_solve"]

_log = get_logger("parallel.procfleet")

#: Seconds a fault-injected worker sleeps between announcing its claim and
#: killing itself — lets the queue feeder flush so the parent knows which
#: shard died (real crashes happen mid-solve, long after the claim).
_KILL_FLUSH_SECONDS = 0.1


def default_start_method() -> str:
    """``fork`` where available (workers inherit the warm plan cache and
    imported numpy for free), else ``spawn``."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _worker_main(worker_id: int, store_handle, block_handle,
                 task_q, done_q, opts: dict, cancel_ev=None) -> None:
    """Persistent worker loop: attach, warm the plan, drain descriptors.

    Module-level (not a closure) so spawn contexts can pickle it; every
    argument is a handle or primitive — the tensor payload arrives by
    attaching shared memory, never through this call.

    Observability: when the parent is tracing (``opts["trace"]``) the
    worker records its spans into its own :class:`Recorder` and ships the
    serialized tree back in its exit message; when an event spool is
    active (``opts["events"]``) the worker appends to the same JSONL file
    under its own ``w<id>`` source tag and ``O_APPEND`` descriptor.
    """
    # the parent coordinates shutdown (sentinels / terminate); a Ctrl-C
    # storm hitting the whole process group shouldn't produce N tracebacks
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.resilience.faults import InjectedFault

    reg = MetricsRegistry()
    rec = (Recorder(meta={"worker": worker_id, "run_id": opts.get("run_id")})
           if opts.get("trace") else None)
    spool = None
    if opts.get("events"):
        spool = EventSpool.open(opts["events"], run_id=opts.get("run_id"),
                                src=f"w{worker_id}", header=False)
    claims = 0
    shards_done = 0
    store = block = None
    try:
        with contextlib.ExitStack() as stack:
            stack.enter_context(use_registry(reg))
            stack.enter_context(log_context(run=opts.get("run_id"),
                                            worker=f"w{worker_id}"))
            if rec is not None:
                stack.enter_context(rec.activate())
                rec.gauge("worker.id", worker_id)
                rec.gauge("worker.pid", os.getpid())
            if spool is not None:
                stack.enter_context(use_spool(spool))
                spool.emit("worker_start", pid=os.getpid())
            store = store_handle.attach()
            block = block_handle.attach()
            m, n = store.m, store.n
            from repro.kernels.plan import get_plan
            from repro.kernels.tables import prime_tables

            with _wspan("plan_warm"):
                tables = store.kernel_tables()
                if tables is not None:
                    prime_tables(tables)
                # one plan warm per worker: tables came via the store,
                # codegen via the on-disk plan cache the parent populated
                plan = get_plan(m, n, opts["variant"], opts["backend"])
            dtype = np.dtype(opts["dtype"])
            # cancellation: callables don't pickle, so workers rebuild the
            # stop hook from primitives — an absolute deadline (held even
            # if the parent stalls) plus the parent-relayed cancel event
            w_deadline = opts.get("deadline")
            if w_deadline is not None or cancel_ev is not None:
                def w_stop():
                    if cancel_ev is not None and cancel_ev.is_set():
                        return True
                    return (w_deadline is not None
                            and time.time() >= w_deadline)
            else:
                w_stop = None
            wait_start = time.perf_counter()
            while True:
                item = task_q.get()
                if item is None:
                    break
                queue_wait = time.perf_counter() - wait_start
                sid, lo, hi, fault = item
                done_q.put(("claim", worker_id, sid))
                if spool is not None:
                    if claims:
                        # any pull past the first came out of the shared
                        # queue instead of this worker's nominal share
                        spool.emit("steal", shard=sid)
                    spool.emit("shard_start", shard=sid, lo=lo, hi=hi)
                claims += 1
                _log.debug("claimed shard",
                           fields={"shard": sid, "lo": lo, "hi": hi})
                if fault == "crash":
                    from repro.resilience.faults import InjectedWorkerCrash

                    raise InjectedWorkerCrash(
                        f"injected crash in worker {worker_id}, shard {sid}")
                if fault == "kill":
                    time.sleep(_KILL_FLUSH_SECONDS)
                    os.kill(os.getpid(), signal.SIGKILL)
                t0 = time.perf_counter()
                with _wspan(f"shard{sid}"):
                    res = fleet_solve(
                        store.batch(lo, hi),
                        alpha=opts["alpha"], tol=opts["tol"],
                        max_iters=opts["max_iters"], starts=store.starts,
                        variant=opts["variant"], backend=opts["backend"],
                        dtype=dtype, adaptive=opts["adaptive"],
                        compact_every=opts["compact_every"],
                        guards=opts["guards"], plan=plan,
                        out=block.workspace(lo, hi), telemetry=False,
                        stop=w_stop,
                    )
                meta = {
                    "seconds": time.perf_counter() - t0,
                    "sweeps": res.sweeps,
                    "compactions": res.compactions,
                    "queue_wait": queue_wait,
                    "stopped": res.stopped,
                }
                del res  # drop the buffer views before dispose
                shards_done += 1
                if spool is not None:
                    spool.emit("shard_finish", shard=sid,
                               seconds=meta["seconds"],
                               sweeps=meta["sweeps"])
                _log.info("shard finished",
                          fields={"shard": sid,
                                  "seconds": round(meta["seconds"], 6)})
                done_q.put(("done", worker_id, sid, meta))
                wait_start = time.perf_counter()
    except InjectedFault:
        # chaos-injected crash: die nonzero (the parent requeues the
        # shard) without spraying a traceback into the test output
        raise SystemExit(1)
    finally:
        if spool is not None:
            spool.emit("worker_exit", shards=shards_done)
            spool.close()
        try:
            trace_doc = rec.to_dict() if rec is not None else None
            done_q.put(("exit", worker_id, reg.snapshot(), trace_doc))
        except Exception:  # pragma: no cover - pipe already gone
            pass
        if block is not None:
            block.dispose()
        if store is not None:
            store.dispose()


def process_fleet_solve(
    tensors: SymmetricTensorBatch,
    shards: list[range],
    starts: np.ndarray,
    *,
    workers: int,
    alpha: float,
    tol: float,
    max_iters: int,
    variant: str,
    backend: str,
    dtype,
    adaptive: bool,
    compact_every: int,
    guards,
    start_method: str | None = None,
    max_requeues: int = 2,
    faults: dict | None = None,
    stop=None,
    deadline: float | None = None,
):
    """Run ``shards`` of ``tensors`` on a pool of worker processes.

    ``variant``/``backend``/``guards`` must already be resolved (no
    ``config`` fallback here — the parent resolves once so workers get
    primitives).  ``faults`` maps shard id → ``"crash"`` | ``"kill"``,
    injected on the shard's *first* attempt only (the chaos suite's
    deterministic crash hook).  Returns ``(result, info)`` where ``info``
    carries the per-shard metadata the caller folds into its
    :class:`~repro.parallel.fleet.FleetRunReport` — including
    ``worker_traces``, the serialized per-worker span trees collected
    from exit messages when the calling thread has an active
    :class:`~repro.instrument.recorder.Recorder` (workers are told to
    trace whenever the parent is).

    Cancellation: ``deadline`` (absolute epoch seconds) ships to the
    workers as a primitive, so they honor it autonomously; ``stop`` is a
    parent-side callable polled in the result loop — when it fires the
    parent sets a shared cancel event that every worker's per-sweep stop
    hook observes.  Both cancel through the engine's lane-retirement
    path, so the merged result is complete (``stopped=True``).
    """
    T = len(tensors)
    V = starts.shape[0]
    m, n = tensors.m, tensors.n
    dtype = np.dtype(dtype)
    ctx = mp.get_context(start_method or default_start_method())
    faults = dict(faults or {})

    # warm the process-wide + on-disk plan cache before forking/spawning,
    # and grab the canonical variant name for the merged result
    from repro.kernels.plan import get_plan

    plan = get_plan(m, n, variant, backend)

    # observability propagation: workers trace iff the parent traces, and
    # append to the parent's event spool (by path — each opens its own
    # O_APPEND descriptor) under the parent's run id
    spool = current_spool()
    run_id = spool.run_id if spool is not None else None
    opts = {
        "alpha": alpha, "tol": tol, "max_iters": max_iters,
        "variant": variant, "backend": backend, "dtype": dtype.str,
        "adaptive": adaptive, "compact_every": compact_every,
        "guards": guards,
        "trace": current_recorder() is not None,
        "events": spool.path if spool is not None else None,
        "run_id": run_id,
        "deadline": deadline,
    }

    store = SharedTensorStore.publish(tensors, starts, tables=plan.tables)
    block = SharedResultBlock.allocate(T, V, n, dtype=dtype)
    task_q = ctx.Queue()
    done_q = ctx.Queue()
    cancel_ev = ctx.Event() if (stop is not None or deadline is not None) \
        else None

    def cancelled() -> bool:
        """Parent-side view of the cancellation state (also the stop hook
        for inline fallback solves)."""
        if cancel_ev is not None and cancel_ev.is_set():
            return True
        if deadline is not None and time.time() >= deadline:
            return True
        return stop is not None and stop()

    state = {
        sid: {"range": (r.start, r.stop), "attempts": 0, "claimed_by": None,
              "meta": None}
        for sid, r in enumerate(shards)
    }
    done: set[int] = set()
    failed: set[int] = set()
    requeues = 0
    warned_degraded = False
    snapshots: list[dict] = []
    worker_traces: dict[int, dict] = {}

    _emit("run_start", tensors=T, lanes=T * V, workers=workers,
          shards=len(state), executor="process",
          ranges=[list(state[sid]["range"]) for sid in sorted(state)])

    def enqueue(sid: int, fault=None) -> None:
        lo, hi = state[sid]["range"]
        payload = (sid, lo, hi, fault)
        observe_ipc_payload("descriptor", len(pickle.dumps(payload)))
        task_q.put(payload)

    def write_off(sid: int) -> None:
        # placeholder rows, same contract as the thread executor's
        # ChunkFailure path: NaN values, failed mask set, never dropped
        lo, hi = state[sid]["range"]
        a = block.arrays
        a["eigenvalues"][lo:hi] = np.nan
        a["eigenvectors"][lo:hi] = np.nan
        a["converged"][lo:hi] = False
        a["iterations"][lo:hi] = 0
        a["failed"][lo:hi] = True
        a["shifts"][lo:hi] = alpha
        failed.add(sid)
        _emit("writeoff", shard=sid)
        _log.error("shard written off (requeue budget exhausted)",
                   fields={"run": run_id, "shard": sid})

    def run_inline(sid: int) -> None:
        # nobody left to delegate to: the parent solves the shard itself
        lo, hi = state[sid]["range"]
        _emit("shard_start", shard=sid, lo=lo, hi=hi)
        t0 = time.perf_counter()
        res = fleet_solve(
            store.batch(lo, hi), alpha=alpha, tol=tol, max_iters=max_iters,
            starts=store.starts, variant=variant, backend=backend,
            dtype=dtype, adaptive=adaptive, compact_every=compact_every,
            guards=guards, plan=plan, out=block.workspace(lo, hi),
            telemetry=False,
            stop=cancelled if cancel_ev is not None else None,
        )
        state[sid]["meta"] = {
            "seconds": time.perf_counter() - t0, "sweeps": res.sweeps,
            "compactions": res.compactions, "queue_wait": 0.0,
            "stopped": res.stopped,
        }
        del res
        done.add(sid)
        meta = state[sid]["meta"]
        _emit("shard_finish", shard=sid, seconds=meta["seconds"],
              sweeps=meta["sweeps"])
        _log.info("shard solved inline by the parent",
                  fields={"run": run_id, "shard": sid})

    def handle_lost_shard(sid: int, error: str) -> None:
        nonlocal requeues, warned_degraded
        st = state[sid]
        st["claimed_by"] = None
        st["attempts"] += 1
        budget_left = st["attempts"] <= max_requeues
        if not warned_degraded:
            warned_degraded = True
            warnings.warn(
                f"fleet worker died on shard {sid} ({error}); "
                + ("requeueing — running in degraded mode" if budget_left
                   else "requeue budget exhausted"),
                RuntimeWarning, stacklevel=3)
        if not budget_left:
            write_off(sid)
            return
        requeues += 1
        _emit("requeue", shard=sid, attempt=st["attempts"])
        _log.warning("worker died on shard; requeueing",
                     fields={"run": run_id, "shard": sid, "error": error,
                             "attempt": st["attempts"]})
        if alive:
            enqueue(sid)  # fault injected on first attempt only
        else:
            run_inline(sid)

    for sid in state:
        enqueue(sid, faults.get(sid))

    procs = {
        wid: ctx.Process(
            target=_worker_main,
            args=(wid, store.handle(), block.handle(), task_q, done_q, opts,
                  cancel_ev),
            daemon=True, name=f"repro-fleet-worker-{wid}")
        for wid in range(workers)
    }
    alive = dict(procs)
    clean_exited: set[int] = set()
    t_start = time.perf_counter()

    try:
        for proc in procs.values():
            proc.start()

        def reap_dead() -> None:
            for wid in list(alive):
                proc = alive[wid]
                if proc.is_alive():
                    continue
                proc.join()
                del alive[wid]
                if wid in clean_exited:
                    # its exit message already credited metrics and
                    # requeued any claimed shard
                    continue
                sid = next((s for s, st in state.items()
                            if st["claimed_by"] == wid
                            and s not in done and s not in failed), None)
                if sid is not None:
                    handle_lost_shard(
                        sid, f"exitcode {proc.exitcode}")

        while len(done) + len(failed) < len(state):
            if not alive:
                # total pool loss: drain unclaimed descriptors and finish
                # inline — degraded, but no shard is ever dropped
                try:
                    while True:
                        task_q.get_nowait()
                except Empty:
                    pass
                for sid in list(state):
                    if sid not in done and sid not in failed:
                        run_inline(sid)
                break
            if cancel_ev is not None and not cancel_ev.is_set() and cancelled():
                # relay the parent-side stop to every worker's sweep hook;
                # remaining queued shards retire instantly through the
                # same path, so the run drains rather than aborts
                cancel_ev.set()
            try:
                msg = done_q.get(timeout=0.1)
            except Empty:
                reap_dead()
                continue
            kind = msg[0]
            if kind == "claim":
                _, wid, sid = msg
                state[sid]["claimed_by"] = wid
            elif kind == "done":
                _, wid, sid, meta = msg
                observe_ipc_payload("meta", len(pickle.dumps(msg)))
                observe_queue_wait(meta["queue_wait"])
                state[sid]["meta"] = meta
                state[sid]["claimed_by"] = None
                done.add(sid)
            elif kind == "exit":
                # a worker that raised sends its snapshot from `finally`
                # then dies nonzero; credit its metrics, requeue its shard
                _, wid, snap, trace_doc = msg
                snapshots.append(snap)
                if trace_doc is not None:
                    observe_ipc_payload("trace", len(pickle.dumps(trace_doc)))
                    worker_traces[wid] = trace_doc
                clean_exited.add(wid)
                sid = next((s for s, st in state.items()
                            if st["claimed_by"] == wid
                            and s not in done and s not in failed), None)
                if sid is not None:
                    handle_lost_shard(sid, "worker raised")

        # drain the pool: one sentinel per survivor, collect exit snapshots
        for _ in alive:
            task_q.put(None)
        drain_by = time.monotonic() + 10.0
        waiting = set(alive) - clean_exited
        while waiting and time.monotonic() < drain_by:
            try:
                msg = done_q.get(timeout=0.2)
            except Empty:
                for wid in list(waiting):
                    if not alive[wid].is_alive():
                        waiting.discard(wid)
                continue
            if msg[0] == "exit":
                snapshots.append(msg[2])
                if msg[3] is not None:
                    observe_ipc_payload("trace", len(pickle.dumps(msg[3])))
                    worker_traces[msg[1]] = msg[3]
                clean_exited.add(msg[1])
                waiting.discard(msg[1])
        for proc in alive.values():
            proc.join(timeout=2.0)
        arrays = block.snapshot()
    finally:
        for proc in alive.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        store.dispose()
        block.dispose()
        task_q.close()
        done_q.close()

    reg = get_registry()
    for snap in snapshots:
        reg.merge(snap)
    if requeues:
        reg.counter(
            "repro_requeues_total",
            "Crashed sweep tasks rescheduled on a surviving worker",
        ).inc(requeues)
    if failed:
        reg.counter(
            "repro_chunk_failures_total",
            "Parallel chunks that exhausted their requeue budget",
        ).inc(len(failed))

    metas = [state[sid]["meta"] for sid in sorted(state)]
    result = FleetResult(
        eigenvalues=arrays["eigenvalues"],
        eigenvectors=arrays["eigenvectors"],
        converged=arrays["converged"],
        iterations=arrays["iterations"],
        sweeps=max((m_["sweeps"] for m_ in metas if m_), default=0),
        failed=arrays["failed"],
        shifts=arrays["shifts"],
        variant=plan.variant,
        compactions=sum(m_["compactions"] for m_ in metas if m_),
        stopped=any(m_.get("stopped", False) for m_ in metas if m_),
        tensors=tensors,
    )
    info = {
        "seconds": time.perf_counter() - t_start,
        "shard_sizes": [len(r) for r in shards],
        "shard_seconds": [m_["seconds"] if m_ else 0.0 for m_ in metas],
        "requeues": requeues,
        "failed_shards": sorted(failed),
        "worker_traces": worker_traces,
    }
    _emit("run_finish", seconds=info["seconds"], requeues=requeues,
          failed=len(failed))
    _log.info("process fleet run finished",
              fields={"run": run_id, "workers": workers,
                      "shards": len(state), "requeues": requeues,
                      "failed": len(failed),
                      "seconds": round(info["seconds"], 6)})
    return result, info
