"""Zero-copy shared-memory tensor store for the multiprocess fleet.

The paper's GPU speedups come from loading the symmetric tensor onto the
device once and streaming only iterate vectors; a process pool that
pickles `SymmetricTensorBatch` payloads per shard does the opposite.
This module is the host-side analog of "tensor stays resident":

* :class:`SharedTensorStore` publishes a batch's packed ``(T, U)`` value
  buffer — plus the shared starting vectors and the precomputed kernel
  table arrays — into POSIX shared memory *once*.  Workers attach
  read-only views by segment name, so no tensor payload ever crosses a
  pipe; a shard is described to a worker by an index range.
* :class:`SharedResultBlock` preallocates the ``(T, V)`` fleet output
  arrays in shared memory.  Workers hand shard slices of it to
  ``fleet_solve(out=...)`` (:class:`repro.engine.fleet.FleetWorkspace`),
  so results are *written in place* — the completion message per shard is
  a few floats of metadata, O(result descriptor) not O(tensor).

Lifecycle discipline (what the chaos suite asserts): the owner — always
the parent process — creates segments and is solely responsible for
unlinking them; :meth:`~SharedArrayBundle.dispose` runs in a ``finally``
so normal exit, ``KeyboardInterrupt``, and crashed workers all leave
``/dev/shm`` clean.  Unlink-before-close is deliberate: POSIX keeps an
unlinked mapping valid until the last unmap, so live numpy views never
block removal of the name.  Attaching processes must *not* unlink; on
CPython < 3.13 ``SharedMemory`` registers attached segments with the
resource tracker as if it owned them, which would make a worker's tracker
destroy the parent's live segment at worker exit — :func:`_no_tracking`
suppresses that registration around each attach.
"""

from __future__ import annotations

import os
import secrets
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.instrument.metrics import (
    observe_shm_attach,
    observe_shm_publish,
    observe_shm_unlink,
)
from repro.symtensor.storage import SymmetricTensorBatch

try:  # pragma: no cover - import guard exercised only on exotic builds
    from multiprocessing import shared_memory as _shm

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover
    _shm = None
    SHM_AVAILABLE = False

__all__ = [
    "SHM_AVAILABLE",
    "SEGMENT_PREFIX",
    "ArraySpec",
    "BlockHandle",
    "SharedArrayBundle",
    "SharedResultBlock",
    "SharedTensorStore",
    "StoreHandle",
    "active_segments",
]

#: Every segment this module creates is named ``repro-fleet-<pid>-<nonce>-<tag>``
#: so leak checks (tests, chaos suite) can enumerate ours and only ours.
SEGMENT_PREFIX = "repro-fleet"

#: Kernel-table arrays travel in the store under this tag prefix.
_TABLE_TAG = "tbl:"


def _require_shm() -> None:
    if not SHM_AVAILABLE:  # pragma: no cover
        raise RuntimeError(
            "multiprocessing.shared_memory is unavailable on this build; "
            "use the thread executor")


def _segment_name(tag: str) -> str:
    # shm_open names share one flat namespace; pid + nonce keeps concurrent
    # fleets (and re-runs after a crash) from colliding.  The resource
    # tracker's pipe protocol is colon-delimited ("CMD:name:rtype"), so a
    # colon in the name (e.g. the "tbl:" tag prefix) corrupts its parse.
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}-{tag.replace(':', '.')}"


@contextmanager
def _no_tracking():
    """Keep the resource tracker out of an *attach*.

    On CPython < 3.13 ``SharedMemory(name=..., create=False)`` registers
    the segment exactly as if it had created it; left alone, a
    spawn-started worker's tracker unlinks the parent's live segment when
    the worker exits, and fork-started workers (which share one tracker
    whose cache is a *set*, not a counter) race their
    register/unregister pairs into KeyError noise.  Rather than
    unregistering after the fact — still one racy message pair per
    attach — suppress the registration itself for the duration.  (3.13
    grew ``track=False`` for exactly this.)
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover
        yield
        return
    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        yield
    finally:
        resource_tracker.register = orig


def active_segments() -> list[str]:
    """Names of live ``repro-fleet-*`` segments on this host (Linux
    ``/dev/shm`` scan; empty elsewhere).  Test/chaos helper for asserting
    the no-leak guarantee."""
    try:
        return sorted(
            name for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        )
    except OSError:  # pragma: no cover - non-Linux or mount missing
        return []


@dataclass(frozen=True)
class ArraySpec:
    """How to re-map one published array: segment name + layout."""

    name: str
    shape: tuple
    dtype: str


class SharedArrayBundle:
    """A tag-keyed set of ndarrays, each backed by one shm segment.

    Base machinery shared by :class:`SharedTensorStore` (read-only in
    workers) and :class:`SharedResultBlock` (writable in workers): publish
    from plain arrays, attach from :class:`ArraySpec` maps, dispose.
    """

    _role = "bundle"

    def __init__(self, segments: dict, arrays: dict, specs: dict, owner: bool):
        self._segments = segments
        self._specs = specs
        self.arrays = arrays
        self.owner = owner
        self._disposed = False

    @classmethod
    def _publish_arrays(cls, arrays: dict) -> tuple[dict, dict, dict]:
        _require_shm()
        segments: dict = {}
        views: dict = {}
        specs: dict = {}
        try:
            for tag, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                seg = _shm.SharedMemory(
                    name=_segment_name(tag), create=True,
                    size=max(1, arr.nbytes))
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[...] = arr
                segments[tag] = seg
                views[tag] = view
                specs[tag] = ArraySpec(
                    name=seg.name, shape=tuple(arr.shape), dtype=str(arr.dtype))
                observe_shm_publish(cls._role, arr.nbytes)
        except BaseException:
            for seg in segments.values():
                try:
                    seg.unlink()
                except OSError:
                    pass
                seg.close()
            raise
        return segments, views, specs

    @classmethod
    def _attach_arrays(cls, specs: dict, *, readonly: bool) -> tuple[dict, dict]:
        _require_shm()
        segments: dict = {}
        views: dict = {}
        try:
            for tag, spec in specs.items():
                with _no_tracking():
                    seg = _shm.SharedMemory(name=spec.name, create=False)
                view = np.ndarray(
                    spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf)
                if readonly:
                    view.flags.writeable = False
                segments[tag] = seg
                views[tag] = view
                observe_shm_attach(cls._role, view.nbytes)
        except BaseException:
            for seg in segments.values():
                seg.close()
            raise
        return segments, views

    def dispose(self) -> None:
        """Unlink (owner only) and unmap every segment.  Never raises,
        idempotent, and safe while views are still alive: the name is
        removed immediately, the memory survives until the last unmap
        (worst case, process exit)."""
        if self._disposed:
            return
        self._disposed = True
        for seg in self._segments.values():
            if self.owner:
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
                except OSError:  # pragma: no cover - platform quirk
                    pass
                else:
                    observe_shm_unlink(self._role)
            try:
                seg.close()
            except BufferError:
                # numpy views still reference the mapping; the kernel
                # reclaims it when they go (or at process exit) — the
                # /dev/shm name is already gone, so nothing leaks
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.dispose()
        return False


@dataclass(frozen=True)
class StoreHandle:
    """Picklable recipe for attaching a :class:`SharedTensorStore` —
    segment names and layouts only, a few hundred bytes.  This is the
    entire tensor-side payload a worker process ever receives."""

    m: int
    n: int
    specs: dict

    def attach(self) -> "SharedTensorStore":
        segments, views = SharedTensorStore._attach_arrays(
            self.specs, readonly=True)
        return SharedTensorStore(
            segments, views, self.specs, owner=False, m=self.m, n=self.n)


class SharedTensorStore(SharedArrayBundle):
    """The published (read-only) side of a fleet workload: packed tensor
    values, shared starting vectors, and kernel table arrays."""

    _role = "tensors"

    def __init__(self, segments, arrays, specs, owner, *, m: int, n: int):
        super().__init__(segments, arrays, specs, owner)
        self.m = m
        self.n = n

    @classmethod
    def publish(cls, tensors: SymmetricTensorBatch, starts: np.ndarray,
                tables=None) -> "SharedTensorStore":
        """Publish ``tensors.values`` ``(T, U)``, ``starts`` ``(V, n)``
        and (optionally) a :class:`~repro.kernels.tables.KernelTables`'
        arrays into fresh shared-memory segments owned by the caller."""
        arrays = {"values": tensors.values, "starts": starts}
        if tables is not None:
            from repro.kernels.tables import tables_to_arrays

            for key, arr in tables_to_arrays(tables).items():
                arrays[_TABLE_TAG + key] = arr
        segments, views, specs = cls._publish_arrays(arrays)
        return cls(segments, views, specs, owner=True,
                   m=tensors.m, n=tensors.n)

    @property
    def values(self) -> np.ndarray:
        return self.arrays["values"]

    @property
    def starts(self) -> np.ndarray:
        return self.arrays["starts"]

    def batch(self, lo: int = 0, hi: int | None = None) -> SymmetricTensorBatch:
        """A zero-copy shard view ``[lo, hi)`` of the published batch."""
        hi = self.values.shape[0] if hi is None else hi
        return SymmetricTensorBatch(self.values[lo:hi], self.m, self.n)

    def kernel_tables(self):
        """Rebuild :class:`~repro.kernels.tables.KernelTables` from the
        published table arrays (``None`` if none were published).  The
        arrays are *copied* out of the mapping — tables get cached
        process-wide (:func:`~repro.kernels.tables.prime_tables`) and must
        outlive the store."""
        keys = [t for t in self.arrays if t.startswith(_TABLE_TAG)]
        if not keys:
            return None
        from repro.kernels.tables import tables_from_arrays

        arrays = {t[len(_TABLE_TAG):]: np.array(self.arrays[t]) for t in keys}
        return tables_from_arrays(self.m, self.n, arrays)

    def handle(self) -> StoreHandle:
        return StoreHandle(m=self.m, n=self.n, specs=dict(self._specs))


@dataclass(frozen=True)
class BlockHandle:
    """Picklable recipe for attaching a :class:`SharedResultBlock`."""

    specs: dict

    def attach(self) -> "SharedResultBlock":
        segments, views = SharedResultBlock._attach_arrays(
            self.specs, readonly=False)
        return SharedResultBlock(segments, views, self.specs, owner=False)


class SharedResultBlock(SharedArrayBundle):
    """Preallocated ``(T, V)`` fleet outputs in shared memory.

    Workers write each shard's rows in place through
    ``fleet_solve(out=block.workspace(lo, hi))``; the parent copies the
    finished arrays out with :meth:`snapshot` before disposing."""

    _role = "results"

    @classmethod
    def allocate(cls, T: int, V: int, n: int,
                 dtype=np.float64) -> "SharedResultBlock":
        """Owner-side allocation, prefilled like an all-unsolved fleet
        (NaN values / ``failed=False``) so rows of a shard that never ran
        read as unconverged placeholders, not zeros."""
        proto = {
            "eigenvalues": np.full((T, V), np.nan),
            "eigenvectors": np.full((T, V, n), np.nan, dtype=dtype),
            "converged": np.zeros((T, V), dtype=bool),
            "iterations": np.zeros((T, V), dtype=np.int64),
            "failed": np.zeros((T, V), dtype=bool),
            "shifts": np.full((T, V), np.nan),
        }
        segments, views, specs = cls._publish_arrays(proto)
        return cls(segments, views, specs, owner=True)

    def workspace(self, lo: int, hi: int):
        """A :class:`~repro.engine.fleet.FleetWorkspace` of views over
        tensor rows ``[lo, hi)`` — what a worker passes to
        ``fleet_solve(out=...)``."""
        from repro.engine.fleet import FleetWorkspace

        a = self.arrays
        return FleetWorkspace(
            eigenvalues=a["eigenvalues"][lo:hi],
            eigenvectors=a["eigenvectors"][lo:hi],
            converged=a["converged"][lo:hi],
            iterations=a["iterations"][lo:hi],
            failed=a["failed"][lo:hi],
            shifts=a["shifts"][lo:hi],
        )

    def snapshot(self) -> dict:
        """Plain-memory copies of every output array (safe to keep after
        :meth:`dispose`)."""
        return {tag: np.array(arr) for tag, arr in self.arrays.items()}

    def handle(self) -> BlockHandle:
        return BlockHandle(specs=dict(self._specs))
