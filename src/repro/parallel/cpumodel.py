"""Calibrated CPU performance model for the paper's OpenMP baselines.

The paper's CPU rows (Table III) come from a dual-socket quad-core Nehalem
running scalar (no SSE, no memory-hierarchy tuning) code.  The model has
two layers:

* **single-core efficiency** per kernel variant — calibrated to the
  measured 1-core rates: unrolled 2.05 GFLOPS (9% of the 22.4 GFLOPS SIMD
  peak — consistent with scalar code that issues ~1 flop/cycle-ish with
  overheads) and general 0.24 GFLOPS (the 8.47x unrolling speedup);
* **scaling shape** — near-linear within a socket (the paper: "nearly
  perfect parallel speedup over four threads"), degraded across sockets
  ("we did not observe the same scaling using 8 threads ... due to
  inefficient use of the memory hierarchy across both sockets").  The
  degradation is variant-dependent: the unrolled kernel is fast enough per
  byte to become memory-bound across sockets (measured 8-core speedup only
  4.72x) while the slower general kernel stays compute-bound (7.14x).

Calibrated constants are anchored to Table III and recorded in
EXPERIMENTS.md; the *shape* (linear-then-kinked at the socket boundary) is
structural.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import NEHALEM_2S, CpuSpec

__all__ = [
    "CpuPerfParams",
    "CpuPrediction",
    "predict_cpu_sshopm",
    "speedup_curve",
    "DEFAULT_CPU_PARAMS",
]


@dataclass(frozen=True)
class CpuPerfParams:
    """Calibrated constants for the CPU model (see module docstring).

    ``eff_*`` are single-core achieved fractions of the per-core SIMD peak;
    ``intra_*`` / ``inter_*`` are marginal per-core scaling efficiencies
    within the first socket and on the second socket respectively.
    """

    eff_unrolled: float = 2.05 / 22.4  # ~0.0915 -> 2.05 GFLOPS on one core
    eff_general: float = 0.24 / 22.4  # ~0.0107 -> 0.24 GFLOPS on one core
    intra_unrolled: float = 3.45 / 4.0  # 4-core speedup 3.45
    intra_general: float = 3.55 / 4.0  # 4-core speedup 3.55
    inter_unrolled: float = (4.72 - 3.45) / 4.0  # 8-core speedup 4.72
    inter_general: float = (7.14 - 3.55) / 4.0  # 8-core speedup 7.14


DEFAULT_CPU_PARAMS = CpuPerfParams()


@dataclass(frozen=True)
class CpuPrediction:
    """Model output for one CPU configuration."""

    cpu_name: str
    variant: str
    cores: int
    speedup: float  # over the same variant on one core
    gflops: float
    seconds: float
    fraction_of_peak: float  # of the SIMD peak over the cores used


def speedup_curve(cores: int, intra: float, inter: float, cores_per_socket: int) -> float:
    """Parallel speedup: per-core efficiency ``intra`` on the first socket,
    ``inter`` beyond it (one core always contributes 1.0)."""
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    if cores == 1:
        return 1.0
    first = min(cores, cores_per_socket)
    rest = cores - first
    return 1.0 + (first - 1) * _marginal(intra, cores_per_socket) + rest * inter


def _marginal(intra: float, cores_per_socket: int) -> float:
    # intra is defined as (speedup at full socket) / cores_per_socket;
    # convert to the marginal contribution of cores 2..cores_per_socket so
    # that a full socket lands exactly on the calibrated speedup.
    if cores_per_socket <= 1:
        return intra
    return (intra * cores_per_socket - 1.0) / (cores_per_socket - 1)


def predict_cpu_sshopm(
    total_flops: float,
    variant: str = "unrolled",
    cores: int = 1,
    cpu: CpuSpec = NEHALEM_2S,
    params: CpuPerfParams = DEFAULT_CPU_PARAMS,
) -> CpuPrediction:
    """Predict runtime/throughput of the CPU implementation.

    Parameters
    ----------
    total_flops : useful flops of the workload (same basis as the GPU
        model: the unrolled static count x iterations x threads).
    variant : ``"unrolled"`` or ``"general"``.
    cores : 1..cpu.total_cores.
    """
    if not 1 <= cores <= cpu.total_cores:
        raise ValueError(f"cores must be in 1..{cpu.total_cores}, got {cores}")
    if total_flops <= 0:
        raise ValueError("total_flops must be positive")
    if variant == "unrolled":
        eff, intra, inter = params.eff_unrolled, params.intra_unrolled, params.inter_unrolled
    elif variant == "general":
        eff, intra, inter = params.eff_general, params.intra_general, params.inter_general
    else:
        raise ValueError(f"unknown variant {variant!r}")

    single_core_gflops = eff * cpu.peak_gflops_per_core
    s = speedup_curve(cores, intra, inter, cpu.cores_per_socket)
    gflops = single_core_gflops * s
    seconds = total_flops / (gflops * 1e9)
    return CpuPrediction(
        cpu_name=cpu.name,
        variant=variant,
        cores=cores,
        speedup=s,
        gflops=gflops,
        seconds=seconds,
        fraction_of_peak=gflops / (cpu.peak_gflops_per_core * cores),
    )
