"""Exact eigenpairs for dimension n = 2 via polynomial root finding.

For ``n = 2`` the tensor eigenproblem reduces to a univariate polynomial:
parametrize ``x = (cos t, sin t)`` and eliminate ``lambda`` from
``A x^{m-1} = lambda x``:

    g(x) := x_2 * (A x^{m-1})_1 - x_1 * (A x^{m-1})_2 = 0,

a homogeneous binary form of degree ``m``.  Dehomogenizing with
``x = (1, s)`` (plus the possible root at infinity ``x = (0, 1)``) turns
eigenvectors into roots of a degree-``<= m`` polynomial in ``s``, which
:func:`numpy.roots` solves exactly (to machine precision).

Cartwright & Sturmfels' count ``((m-1)^n - 1)/(m - 2) = m`` (for ``n=2``)
is visible directly: the binary form ``g`` has exactly ``m`` projective
roots over C counted with multiplicity.  This module is used as an
independent oracle for the iterative solvers: every real root must satisfy
the eigen equation, and SS-HOPM results must appear among the real roots.
"""

from __future__ import annotations

import numpy as np

from repro.core.eigenpairs import Eigenpair, canonicalize_sign, eigen_residual
from repro.kernels.compressed import ax_m1_compressed
from repro.symtensor.indexing import index_table, multiplicity_table, sigma_table
from repro.symtensor.storage import SymmetricTensor

__all__ = ["eigen_polynomial_n2", "exact_eigenpairs_n2"]


def eigen_polynomial_n2(tensor: SymmetricTensor) -> np.ndarray:
    """Coefficients (highest degree first, numpy convention) of the
    dehomogenized eigenvector polynomial ``p(s) = g(1, s)``.

    ``g(x) = x_2 (A x^{m-1})_1 - x_1 (A x^{m-1})_2`` expanded in the
    monomial basis ``x_1^{m-k} x_2^k``; with ``x = (1, s)`` the coefficient
    of ``s^k`` is the ``x_2^k`` coefficient of ``g``.
    """
    if tensor.n != 2:
        raise ValueError(f"exact solver requires n = 2, got n = {tensor.n}")
    m = tensor.m
    # (A x^{m-1})_j = sum_u sigma_u(j) a_u x^{mono(u) - e_j}: a binary form
    # of degree m-1.  Accumulate its coefficients in powers of x_2.
    idx = index_table(m, 2)  # (U, m) 0-based
    sig = sigma_table(m, 2)  # (U, 2)
    values = tensor.values
    # degree of x_2 in class u's monomial:
    deg2 = idx.sum(axis=1)  # number of 1s (0-based index 1 == x_2)
    f1 = np.zeros(m, dtype=np.float64)  # coeffs of (Ax^{m-1})_1 by x_2-degree
    f2 = np.zeros(m, dtype=np.float64)
    for u in range(idx.shape[0]):
        d = int(deg2[u])
        if sig[u, 0]:
            f1[d] += sig[u, 0] * values[u]  # monomial loses one x_1
        if sig[u, 1]:
            f2[d - 1] += sig[u, 1] * values[u]  # loses one x_2
    # g = x_2 * f1 - x_1 * f2: by x_2-degree k (0..m)
    g = np.zeros(m + 1, dtype=np.float64)
    g[1:] += f1  # x_2 * f1 shifts degree up by one
    g[:-1] -= f2  # x_1 * f2 keeps x_2-degree
    # numpy.roots wants highest degree first: p(s) coeffs, degree m .. 0
    return g[::-1]


def exact_eigenpairs_n2(
    tensor: SymmetricTensor,
    real_tol: float = 1e-8,
    classify: bool = True,
) -> list[Eigenpair]:
    """All real eigenpairs of a symmetric tensor in ``R^[m,2]``, exactly.

    Finds the real projective roots of the eigenvector polynomial (plus
    the root at infinity when the leading coefficient vanishes), converts
    each to a unit eigenvector, computes its eigenvalue as ``A x^m``, and
    returns canonicalized, classified :class:`Eigenpair` objects sorted by
    descending eigenvalue.  For odd ``m`` the ``(-lambda, -x)`` mirrors are
    folded onto their ``lambda >= 0`` representatives.
    """
    from repro.kernels.compressed import ax_m_compressed

    coeffs = eigen_polynomial_n2(tensor)
    m = tensor.m

    vectors: list[np.ndarray] = []
    # root at infinity: leading coefficient (degree m) ~ 0 -> x = (0, 1)
    scale = float(np.max(np.abs(coeffs))) or 1.0
    trimmed = coeffs.copy()
    if abs(trimmed[0]) <= 1e-13 * scale:
        vectors.append(np.array([0.0, 1.0]))
    # strip (numerically) zero leading coefficients before rooting
    nz = np.nonzero(np.abs(trimmed) > 1e-13 * scale)[0]
    if nz.size:
        poly = trimmed[nz[0] :]
        if poly.size > 1:
            for root in np.roots(poly):
                if abs(root.imag) <= real_tol * (1 + abs(root.real)):
                    v = np.array([1.0, float(root.real)])
                    vectors.append(v / np.linalg.norm(v))

    pairs: list[Eigenpair] = []
    for v in vectors:
        lam = float(ax_m_compressed(tensor, v))
        # polish with one Newton-flavored normalization: scale-invariant
        res = eigen_residual(tensor, lam, v)
        lam_c, v_c = canonicalize_sign(lam, v, m)
        # dedupe exact duplicates (double roots)
        duplicate = False
        for p in pairs:
            if abs(p.eigenvalue - lam_c) < 1e-8 and abs(abs(p.eigenvector @ v_c) - 1) < 1e-8:
                duplicate = True
                break
        if duplicate:
            continue
        pair = Eigenpair(eigenvalue=lam_c, eigenvector=v_c, residual=res)
        if classify:
            from repro.core.eigenpairs import classify_eigenpair

            pair.stability = classify_eigenpair(tensor, lam_c, v_c)
        pairs.append(pair)
    pairs.sort(key=lambda p: -p.eigenvalue)
    return pairs
