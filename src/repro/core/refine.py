"""Newton refinement of tensor eigenpairs.

SS-HOPM converges linearly (rate analysis in :mod:`repro.core.theory`);
once an iterate is near an eigenpair, Newton's method on the square system

    F(x, lambda) = [ A x^{m-1} - lambda x ;  (x.x - 1) / 2 ] = 0

converges quadratically.  The Jacobian assembles from quantities the
library already has: ``dF/dx = (m-1) A x^{m-2} - lambda I`` (the Hessian
matrix of :mod:`repro.core.eigenpairs`) and ``dF/dlambda = -x``.

Typical use: run multistart SS-HOPM with a loose tolerance (cheap sweeps),
then polish the deduplicated pairs to machine precision in 3-5 Newton
steps — the standard two-phase strategy for eigenproblems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.eigenpairs import Eigenpair, eigen_residual, hessian_matrix
from repro.kernels.compressed import ax_m1_compressed
from repro.symtensor.storage import SymmetricTensor

__all__ = ["NewtonResult", "newton_refine", "refine_pairs"]


@dataclass
class NewtonResult:
    """Outcome of Newton polishing.

    Attributes
    ----------
    eigenvalue, eigenvector : the refined pair (``x`` unit norm).
    converged : residual fell below ``tol``.
    iterations : Newton steps taken.
    residual : final ``||A x^{m-1} - lambda x||``.
    residual_history : residual per step (quadratic decay when it works).
    """

    eigenvalue: float
    eigenvector: np.ndarray
    converged: bool
    iterations: int
    residual: float
    residual_history: list[float]


def newton_refine(
    tensor: SymmetricTensor,
    lam: float,
    x: np.ndarray,
    tol: float = 1e-13,
    max_iter: int = 25,
    max_step: float = 0.5,
) -> NewtonResult:
    """Polish an approximate eigenpair with Newton's method.

    Steps larger than ``max_step`` (in the combined ``(x, lambda)`` norm)
    are truncated — a light safeguard so a bad initial guess diverges
    gracefully instead of jumping across the sphere.
    """
    x = np.asarray(x, dtype=np.float64).copy()
    norm = np.linalg.norm(x)
    if norm == 0:
        raise ValueError("initial eigenvector guess must be nonzero")
    x /= norm
    lam = float(lam)
    n = tensor.n

    history = [eigen_residual(tensor, lam, x)]
    converged = history[-1] < tol
    iterations = 0
    for _ in range(max_iter):
        if converged:
            break
        iterations += 1
        F = np.empty(n + 1)
        F[:n] = ax_m1_compressed(tensor, x) - lam * x
        F[n] = 0.5 * (x @ x - 1.0)
        J = np.zeros((n + 1, n + 1))
        J[:n, :n] = hessian_matrix(tensor, x) - lam * np.eye(n)
        J[:n, n] = -x
        J[n, :n] = x
        try:
            step = np.linalg.solve(J, -F)
        except np.linalg.LinAlgError:
            break
        step_norm = float(np.linalg.norm(step))
        if step_norm > max_step:
            step *= max_step / step_norm
        x = x + step[:n]
        lam = lam + float(step[n])
        nrm = np.linalg.norm(x)
        if nrm == 0 or not np.isfinite(nrm):
            break
        x /= nrm
        history.append(eigen_residual(tensor, lam, x))
        converged = history[-1] < tol
        if not np.isfinite(history[-1]):
            break

    return NewtonResult(
        eigenvalue=lam,
        eigenvector=x,
        converged=converged,
        iterations=iterations,
        residual=history[-1],
        residual_history=history,
    )


def refine_pairs(
    tensor: SymmetricTensor,
    pairs: list[Eigenpair],
    tol: float = 1e-13,
    max_iter: int = 25,
) -> list[Eigenpair]:
    """Polish a list of (deduplicated) eigenpairs in place-order; pairs
    whose refinement diverges keep their original values."""
    out: list[Eigenpair] = []
    for p in pairs:
        res = newton_refine(tensor, p.eigenvalue, p.eigenvector,
                            tol=tol, max_iter=max_iter)
        if res.converged and res.residual <= p.residual:
            out.append(
                Eigenpair(
                    eigenvalue=res.eigenvalue,
                    eigenvector=res.eigenvector,
                    occurrences=p.occurrences,
                    residual=res.residual,
                    stability=p.stability,
                )
            )
        else:
            out.append(p)
    return out
