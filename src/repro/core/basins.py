"""Basin-of-attraction analysis for SS-HOPM.

The paper: "there are still many open problems regarding choice of starting
vector ... and finding eigenpairs with certain properties."  Multistart
coverage depends on the basins of attraction of the shifted iteration; this
module maps them: a (near-)uniform grid of starting vectors on the sphere
is run through lockstep SS-HOPM and each start is labeled with the eigenpair
it reaches.  The result quantifies how many random starts are needed to
find everything (basin fractions -> coupon-collector estimates) and renders
an ASCII map of the sphere for n = 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.eigenpairs import Eigenpair, canonicalize_sign, dedupe_eigenpairs
from repro.core.multistart import multistart_sshopm
from repro.symtensor.storage import SymmetricTensor
from repro.util.rng import fibonacci_sphere

__all__ = ["BasinMap", "basin_map", "starts_needed_estimate", "render_basin_map"]


@dataclass
class BasinMap:
    """Result of a basin-of-attraction sweep.

    Attributes
    ----------
    pairs : the distinct eigenpairs reached (sorted by descending lambda).
    starts : the ``(S, n)`` starting vectors probed.
    labels : ``(S,)`` index into ``pairs`` per start; ``-1`` = unconverged
        or unmatched.
    fractions : basin size per pair (fraction of converged starts).
    """

    pairs: list[Eigenpair]
    starts: np.ndarray
    labels: np.ndarray
    fractions: np.ndarray

    @property
    def coverage(self) -> float:
        """Fraction of starts that converged to some labeled pair."""
        return float(np.mean(self.labels >= 0))


def basin_map(
    tensor: SymmetricTensor,
    alpha: float,
    resolution: int = 400,
    starts: np.ndarray | None = None,
    tol: float = 1e-11,
    max_iter: int = 3000,
    lambda_tol: float = 1e-5,
    angle_tol: float = 1e-2,
) -> BasinMap:
    """Map the basins of attraction of the ``alpha``-shifted iteration.

    Default starts: a Fibonacci covering of the sphere (``n = 3``); pass
    explicit ``starts`` for other dimensions.
    """
    n = tensor.n
    if starts is None:
        if n != 3:
            raise ValueError("default sphere covering requires n=3; pass starts=")
        starts = fibonacci_sphere(resolution)
    starts = np.asarray(starts, dtype=np.float64)

    res = multistart_sshopm(tensor, starts=starts, alpha=alpha, tol=tol,
                            max_iters=max_iter)
    lams = res.eigenvalues[0]
    vecs = res.eigenvectors[0]
    conv = res.converged[0]

    pairs = dedupe_eigenpairs(
        lams, vecs, tensor.m, tensor=tensor, classify=True,
        lambda_tol=lambda_tol, angle_tol=angle_tol, converged_mask=conv,
    )

    labels = np.full(starts.shape[0], -1, dtype=np.int64)
    cos_tol = np.cos(10 * angle_tol)
    for s in range(starts.shape[0]):
        if not conv[s]:
            continue
        lam_c, vec_c = canonicalize_sign(float(lams[s]), vecs[s], tensor.m)
        for k, p in enumerate(pairs):
            if abs(p.eigenvalue - lam_c) <= 10 * lambda_tol and abs(
                float(p.eigenvector @ vec_c)
            ) >= cos_tol:
                labels[s] = k
                break

    converged_count = max(1, int((labels >= 0).sum()))
    fractions = np.array(
        [(labels == k).sum() / converged_count for k in range(len(pairs))]
    )
    return BasinMap(pairs=pairs, starts=starts, labels=labels, fractions=fractions)


def starts_needed_estimate(fractions: np.ndarray, confidence: float = 0.99) -> int:
    """Random starts needed to hit *every* basin at least once with the
    given confidence, assuming independent draws with the mapped basin
    probabilities: union bound ``sum_k (1 - f_k)^N <= 1 - confidence``."""
    fractions = np.asarray(fractions, dtype=np.float64)
    fractions = fractions[fractions > 0]
    if fractions.size == 0:
        raise ValueError("no nonempty basins")
    if np.any(fractions >= 1.0):
        return 1
    miss = 1.0 - confidence
    count = 1
    while np.sum((1.0 - fractions) ** count) > miss and count < 10**7:
        count += 1
    return count


def render_basin_map(bmap: BasinMap, width: int = 72, height: int = 24) -> str:
    """ASCII theta-phi map of the basins (n = 3): each cell shows the label
    of the nearest probed start ('.' for unlabeled).  Eigenpair k prints as
    the digit/letter ``k``."""
    if bmap.starts.shape[1] != 3:
        raise ValueError("rendering requires n=3 starts")
    symbols = "0123456789abcdefghijklmnopqrstuvwxyz"
    lines = []
    # precompute angles of probed starts
    for row in range(height):
        theta = np.pi * (row + 0.5) / height
        cells = []
        for col in range(width):
            phi = 2 * np.pi * (col + 0.5) / width - np.pi
            p = np.array(
                [np.sin(theta) * np.cos(phi), np.sin(theta) * np.sin(phi), np.cos(theta)]
            )
            idx = int(np.argmax(bmap.starts @ p))
            label = bmap.labels[idx]
            cells.append(symbols[label % len(symbols)] if label >= 0 else ".")
        lines.append("".join(cells))
    legend = "  ".join(
        f"{symbols[k % len(symbols)]}: lambda={p.eigenvalue:+.4f} ({bmap.fractions[k]:.0%})"
        for k, p in enumerate(bmap.pairs)
    )
    return "\n".join(lines) + "\n" + legend
