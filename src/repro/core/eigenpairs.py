"""Tensor eigenpair utilities: residuals, sign canonicalization,
deduplication of multistart results, and stability classification.

SS-HOPM converges to different eigenpairs from different starting vectors
(unlike the matrix power method); a multistart run therefore yields a
multiset of (lambda, x) pairs that must be clustered into distinct
eigenpairs, and — for the MRI application — filtered to the *local maxima*
of ``f(x) = A x^m`` on the sphere, which are the eigenpairs with negative
definite projected Hessian.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.compressed import ax_m1_compressed, ax_m_compressed, ttsv_compressed
from repro.symtensor.storage import SymmetricTensor

__all__ = [
    "Eigenpair",
    "eigen_residual",
    "canonicalize_sign",
    "hessian_matrix",
    "projected_hessian_eigenvalues",
    "classify_eigenpair",
    "dedupe_eigenpairs",
]


@dataclass
class Eigenpair:
    """A (deduplicated) real eigenpair of a symmetric tensor.

    Attributes
    ----------
    eigenvalue, eigenvector : the pair ``(lambda, x)``, ``||x|| = 1``.
    occurrences : how many multistart runs converged to this pair (a proxy
        for the size of its basin of attraction).
    residual : ``||A x^{m-1} - lambda x||``.
    stability : ``"pos_stable"`` (local max of f), ``"neg_stable"``
        (local min), ``"unstable"`` (saddle), or ``"degenerate"``
        (projected Hessian singular to tolerance); empty if unclassified.
    """

    eigenvalue: float
    eigenvector: np.ndarray
    occurrences: int = 1
    residual: float = np.nan
    stability: str = ""

    def __repr__(self) -> str:
        vec = np.array2string(self.eigenvector, precision=4, suppress_small=True)
        return (
            f"Eigenpair(lambda={self.eigenvalue:+.4f}, x={vec}, "
            f"occurrences={self.occurrences}, stability={self.stability or '?'})"
        )


def eigen_residual(tensor: SymmetricTensor, lam: float, x: np.ndarray) -> float:
    """Eigenpair equation defect ``||A x^{m-1} - lambda x||_2``."""
    x = np.asarray(x, dtype=np.float64)
    return float(np.linalg.norm(ax_m1_compressed(tensor, x) - lam * x))


def canonicalize_sign(lam: float, x: np.ndarray, m: int) -> tuple[float, np.ndarray]:
    """Canonical representative of the sign symmetry.

    For even ``m``, ``(lambda, -x)`` is also an eigenpair: flip ``x`` so its
    largest-magnitude entry is positive.  For odd ``m``, ``(-lambda, -x)``
    is the mirror pair: choose the representative with ``lambda >= 0``
    (flipping ``x`` accordingly), breaking ``lambda == 0`` ties by entry
    sign like the even case.
    """
    x = np.asarray(x, dtype=np.float64)
    if m % 2 == 1:
        if lam < 0:
            return -lam, -x
        if lam > 0:
            return lam, x
    pivot = int(np.argmax(np.abs(x)))
    if x[pivot] < 0:
        x = -x
    return lam, x


def hessian_matrix(tensor: SymmetricTensor, x: np.ndarray) -> np.ndarray:
    """The ``n x n`` symmetric matrix ``(m-1) * (A x^{m-2})``.

    This is ``1/m`` times the (unconstrained) Hessian of ``f(x) = A x^m``;
    its restriction to the tangent space of the sphere, compared against
    ``lambda``, determines the stability of an eigenpair (Kolda & Mayo).
    Requires ``m >= 2``; for ``m = 2`` it is just the matrix ``A`` itself.
    """
    m, n = tensor.m, tensor.n
    x = np.asarray(x, dtype=np.float64)
    if m == 2:
        return tensor.to_dense()
    axm2 = ttsv_compressed(tensor, x, 2)
    return (m - 1) * axm2.to_dense()


def projected_hessian_eigenvalues(
    tensor: SymmetricTensor, lam: float, x: np.ndarray
) -> np.ndarray:
    """Eigenvalues of ``P ((m-1) A x^{m-2} - lambda I) P`` restricted to the
    tangent space at ``x`` (``P = I - x x^T``), in ascending order.

    All negative  -> ``x`` is a strict local maximum of ``f`` on the sphere
    (positive stable); all positive -> local minimum (negative stable);
    mixed signs -> saddle.
    """
    x = np.asarray(x, dtype=np.float64)
    n = tensor.n
    H = hessian_matrix(tensor, x) - lam * np.eye(n)
    # orthonormal tangent basis: left singular vectors of x beyond the first
    # span the orthogonal complement of x
    u, _, _ = np.linalg.svd(x.reshape(-1, 1), full_matrices=True)
    tangent = u[:, 1:]
    restricted = tangent.T @ H @ tangent
    restricted = 0.5 * (restricted + restricted.T)
    return np.linalg.eigvalsh(restricted)


def classify_eigenpair(
    tensor: SymmetricTensor, lam: float, x: np.ndarray, tol: float = 1e-8
) -> str:
    """Stability label of an eigenpair (see
    :func:`projected_hessian_eigenvalues`)."""
    if tensor.n == 1:
        return "pos_stable"  # the sphere is two points; every pair is extremal
    evals = projected_hessian_eigenvalues(tensor, lam, x)
    scale = max(1.0, float(np.max(np.abs(evals))))
    if np.any(np.abs(evals) <= tol * scale):
        return "degenerate"
    if np.all(evals < 0):
        return "pos_stable"
    if np.all(evals > 0):
        return "neg_stable"
    return "unstable"


def dedupe_eigenpairs(
    eigenvalues: np.ndarray,
    eigenvectors: np.ndarray,
    m: int,
    tensor: SymmetricTensor | None = None,
    lambda_tol: float = 1e-6,
    angle_tol: float = 1e-4,
    classify: bool = False,
    converged_mask: np.ndarray | None = None,
) -> list[Eigenpair]:
    """Cluster multistart results into distinct eigenpairs.

    Two results are the same pair when their eigenvalues agree to
    ``lambda_tol`` (absolute, after sign canonicalization) and their vectors
    are parallel to within ``angle_tol`` radians (up to the even-order sign
    symmetry).  Results flagged unconverged via ``converged_mask`` are
    dropped.  Returns pairs sorted by descending eigenvalue, each carrying
    its occurrence count; with ``classify=True`` (requires ``tensor``)
    residuals and stability labels are filled in.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64).ravel()
    eigenvectors = np.asarray(eigenvectors, dtype=np.float64)
    if eigenvectors.size % max(1, eigenvalues.shape[0]) != 0 or (
        eigenvectors.ndim > 1 and eigenvectors.shape[0] != eigenvalues.shape[0]
    ):
        raise ValueError(
            f"eigenvector array of shape {eigenvectors.shape} does not match "
            f"{eigenvalues.shape[0]} eigenvalues"
        )
    eigenvectors = eigenvectors.reshape(eigenvalues.shape[0], -1)
    if converged_mask is not None:
        keep = np.asarray(converged_mask, dtype=bool).ravel()
        eigenvalues = eigenvalues[keep]
        eigenvectors = eigenvectors[keep]

    clusters: list[Eigenpair] = []
    cos_tol = np.cos(angle_tol)
    for lam, vec in zip(eigenvalues, eigenvectors):
        lam, vec = canonicalize_sign(float(lam), vec, m)
        matched = False
        for pair in clusters:
            if abs(pair.eigenvalue - lam) > lambda_tol:
                continue
            cosine = abs(float(np.dot(pair.eigenvector, vec)))
            if cosine >= cos_tol:
                # running mean keeps the representative centered
                w = pair.occurrences
                merged = (w * pair.eigenvector + vec * np.sign(
                    np.dot(pair.eigenvector, vec) or 1.0
                )) / (w + 1)
                nrm = np.linalg.norm(merged)
                if nrm > 0:
                    pair.eigenvector = merged / nrm
                pair.eigenvalue = (w * pair.eigenvalue + lam) / (w + 1)
                pair.occurrences += 1
                matched = True
                break
        if not matched:
            clusters.append(Eigenpair(eigenvalue=lam, eigenvector=vec))

    clusters.sort(key=lambda p: -p.eigenvalue)
    if tensor is not None:
        for pair in clusters:
            pair.residual = eigen_residual(tensor, pair.eigenvalue, pair.eigenvector)
            if classify:
                pair.stability = classify_eigenpair(
                    tensor, pair.eigenvalue, pair.eigenvector
                )
    return clusters
