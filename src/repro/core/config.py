"""Shared solver configuration (`SolveConfig`) and signature shims.

Every SS-HOPM driver (:func:`~repro.core.sshopm.sshopm`,
:func:`~repro.core.adaptive.adaptive_sshopm`,
:func:`~repro.core.multistart.multistart_sshopm`,
:func:`~repro.core.solve.find_eigenpairs` and friends) accepts the same
normalized keyword vocabulary — ``alpha=``, ``tol=``, ``max_iters=``,
``rng=`` — plus a ``config=`` bundle carrying any subset of them.

Resolution order for each option: an explicitly passed keyword wins, then
a non-``None`` field of ``config``, then the solver's own default.  Fields
a solver does not use (e.g. ``num_starts`` for single-start ``sshopm``)
are simply ignored, so one ``SolveConfig`` can parameterize a whole
pipeline.

``max_iter=`` (the pre-1.1 spelling) is still accepted everywhere with a
:class:`DeprecationWarning`; see :func:`reconcile_max_iters`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any

__all__ = ["SolveConfig", "resolve_option", "reconcile_max_iters"]


@dataclass(frozen=True)
class SolveConfig:
    """A reusable bundle of solver options.

    Every field defaults to ``None`` = "don't pin; use the solver's own
    default" — set only what you want to fix across calls::

        cfg = SolveConfig(alpha=2.0, tol=1e-10, max_iters=2000)
        sshopm(A, config=cfg)
        multistart_sshopm(batch, num_starts=256, config=cfg)

    Fields
    ------
    alpha : SS-HOPM shift (ignored by the adaptive solver, which derives
        its shift per step).
    tol : convergence threshold on ``|lambda_{k+1} - lambda_k|``.
    max_iters : iteration / lockstep-sweep cap.
    num_starts : starting vectors per tensor (multistart drivers).
    scheme : starting-vector scheme (``"random"`` / ``"fibonacci"``).
    kernels : per-tensor kernel variant name or pair (single-start drivers).
    backend : batched kernel variant name (multistart drivers).
    codegen_backend : codegen backend compiling the batched kernels
        (``"numpy"`` / ``"numba"`` / ``"auto"``; see
        :mod:`repro.kernels.codegen`).
    dtype : compute precision of the batched drivers.
    rng : seed or ``numpy.random.Generator``.
    guards : numerical-guard setting — ``True`` or a
        :class:`~repro.resilience.guards.GuardConfig` makes solvers raise a
        structured :class:`~repro.resilience.guards.SolveFailure` on
        NaN/Inf iterates, lambda oscillation, or stalled progress instead
        of silently returning unconverged garbage (default: off).
    retry : a :class:`~repro.resilience.retry.RetryPolicy` for drivers
        that re-run failed starts (the resilient sweep runner).
    executor : fleet sharding tier for
        :func:`~repro.parallel.fleet.parallel_fleet_solve` —
        ``"thread"``, ``"process"`` (zero-copy shared-memory worker
        processes), or ``"auto"`` (communication-cost-model pick; see
        :mod:`repro.parallel.comm`).
    events : path of a per-run JSONL event spool the fleet drivers
        append typed operational events to
        (:mod:`repro.instrument.events`; rendered live by
        ``repro top``).  ``None`` (default) disables event emission.
    deadline : absolute wall-clock time (``time.time()`` scale) at which
        an in-flight fleet run cancels itself cleanly through the
        engine's lane-retirement path (result comes back complete, with
        ``stopped=True``).  The serving layer sets this per request; for
        ad-hoc runs prefer passing ``deadline=`` directly to
        :func:`~repro.parallel.fleet.parallel_fleet_solve`.
    method : solver method name from the :mod:`repro.solvers` registry
        (``"sshopm"`` / ``"geap"`` / ``"qrst"`` / ``"auto"`` / a
        registered third-party name); ``None`` keeps the facade's legacy
        shape routing.  Only :func:`repro.solve` reads it — the
        per-solver entry points *are* a method and ignore the field.
    """

    alpha: float | None = None
    tol: float | None = None
    max_iters: int | None = None
    num_starts: int | None = None
    scheme: str | None = None
    kernels: Any = None
    backend: str | None = None
    codegen_backend: str | None = None
    dtype: Any = None
    rng: Any = None
    guards: Any = None
    retry: Any = None
    executor: str | None = None
    events: str | None = None
    deadline: float | None = None
    method: str | None = None

    def replace(self, **changes) -> "SolveConfig":
        """A copy with the given fields changed (dataclass ``replace``)."""
        return replace(self, **changes)


def resolve_option(name: str, explicit, config: SolveConfig | None, default):
    """One option through the resolution order: explicit keyword (not
    ``None``) > ``config`` field (not ``None``) > solver default."""
    if explicit is not None:
        return explicit
    if config is not None:
        value = getattr(config, name, None)
        if value is not None:
            return value
    return default


def reconcile_max_iters(max_iters, max_iter, *, stacklevel: int = 3):
    """Fold the deprecated ``max_iter=`` spelling into ``max_iters``.

    Passing both (with different values) is an error; passing only the old
    name warns and forwards the value.
    """
    if max_iter is None:
        return max_iters
    warnings.warn(
        "the max_iter= keyword is deprecated; use max_iters=",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if max_iters is not None and max_iters != max_iter:
        raise TypeError("pass max_iters= or the deprecated max_iter=, not both")
    return max_iter
