"""Deprecated import location — SS-HOPM moved to :mod:`repro.solvers.sshopm`.

PR 10 made the solvers a pluggable subsystem (``repro.solvers``) routed
by ``repro.solve(method=...)``; this module survives as a shim so
``from repro.core.sshopm import sshopm`` keeps working with a
:class:`DeprecationWarning` blaming the caller.  Import from
:mod:`repro.solvers` (or use the facade) instead.
"""

from __future__ import annotations

from repro.kernels._deprecation import warn_deprecated

_FORWARDED = ("SSHOPMResult", "sshopm", "suggested_shift")

__all__ = list(_FORWARDED)


def __getattr__(name: str):
    if name in _FORWARDED:
        warn_deprecated(
            f"repro.core.sshopm.{name}",
            f"import it from repro.solvers (repro.solvers.{name})",
        )
        from importlib import import_module

        return getattr(import_module('repro.solvers.sshopm'), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_FORWARDED))
