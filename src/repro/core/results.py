"""Normalized result types: one protocol across every solver.

Every solver result — :class:`~repro.core.sshopm.SSHOPMResult` (one
tensor, one start), :class:`~repro.core.multistart.MultistartResult`
(lockstep multistart), and :class:`FleetResult` (the fleet engine's
whole-workload solve) — satisfies :class:`ResultProtocol`: it exposes
``converged``, ``telemetry``, and an ``eigenpairs()`` method producing
deduplicated :class:`~repro.core.eigenpairs.Eigenpair` objects.  Code
that consumes "whatever the solver returned" (the :func:`repro.solve`
facade, the CLI, reports) programs against the protocol instead of
switching on concrete types.

Renamed fields keep deprecated aliases that warn but still work; see
:func:`warn_renamed_field` (``MultistartResult.total_sweeps`` →
``.sweeps`` is the current straggler, mirrored on :class:`FleetResult`
for uniformity).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.core.eigenpairs import Eigenpair, dedupe_eigenpairs

__all__ = ["FleetResult", "ResultProtocol", "warn_renamed_field"]


def warn_renamed_field(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the shared renamed-result-field :class:`DeprecationWarning`.

    ``stacklevel=3`` blames the attribute access site (caller → property
    wrapper → this helper), so the warning points at user code, not at
    the result class.
    """
    warnings.warn(
        f"the {old} result field is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


@runtime_checkable
class ResultProtocol(Protocol):
    """What every solver result guarantees.

    ``converged`` is a bool (single-start) or boolean array (one flag per
    lane); ``telemetry`` is the run's
    :class:`~repro.instrument.telemetry.ConvergenceTelemetry` stream or
    ``None``; ``eigenpairs()`` clusters the converged output into
    distinct :class:`~repro.core.eigenpairs.Eigenpair` objects (a flat
    list for single-tensor results, one list per tensor for batch
    results).
    """

    converged: Any
    telemetry: Any

    def eigenpairs(self, *args, **kwargs) -> list: ...


@dataclass
class FleetResult:
    """Outcome of a fleet solve: ``T`` tensors × ``V`` starts in one run.

    Shapes use ``T`` = tensors, ``V`` = starts per tensor, ``n`` = mode
    dimension; the engine's flat lane ``l`` maps to ``(t, v) = divmod(l, V)``.

    Attributes
    ----------
    eigenvalues : ``(T, V)`` final ``lambda`` per lane.
    eigenvectors : ``(T, V, n)`` final unit vectors.
    converged : ``(T, V)`` bool — lanes that met the tolerance.
    iterations : ``(T, V)`` iterations until each lane retired.
    sweeps : lockstep sweeps the engine executed (max over lanes).
    failed : ``(T, V)`` bool — lanes that died numerically (NaN/Inf or a
        collapsed update) and were retired without poisoning the batch.
    shifts : ``(T, V)`` final per-lane shift (differs from the initial
        alpha when adaptive escalation ran), or ``None``.
    telemetry : per-sweep aggregate convergence stream, or ``None``.
    variant : canonical kernel-plan variant the engine used.
    compactions : active-set compactions performed.
    stopped : the run was cancelled early through the engine's ``stop=``
        hook (a deadline, budget cap, or drain request) — still-active
        lanes were retired cleanly with ``converged=False`` and their
        last iterate, so the arrays are complete but the unfinished
        lanes' rows are *partial* state, not the fixed point an
        uninterrupted run would reach.
    tensors : the solved batch (kept so :meth:`eigenpairs` can classify
        and compute residuals without re-threading it), or ``None`` for
        results reloaded from disk.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    converged: np.ndarray
    iterations: np.ndarray
    sweeps: int
    failed: np.ndarray
    shifts: np.ndarray | None = None
    telemetry: Any = None
    variant: str = ""
    compactions: int = 0
    stopped: bool = False
    tensors: Any = field(default=None, repr=False)

    @property
    def num_tensors(self) -> int:
        return self.eigenvalues.shape[0]

    @property
    def num_starts(self) -> int:
        return self.eigenvalues.shape[1]

    @property
    def total_sweeps(self) -> int:
        """Deprecated alias of :attr:`sweeps` (pre-1.2 spelling)."""
        warn_renamed_field("total_sweeps", "sweeps")
        return self.sweeps

    def converged_fraction(self) -> float:
        return float(np.mean(self.converged)) if self.converged.size else 0.0

    def eigenpairs(
        self,
        tensors=None,
        lambda_tol: float = 1e-5,
        angle_tol: float = 1e-2,
        classify: bool = False,
    ) -> list[list[Eigenpair]]:
        """Per-tensor deduplicated eigenpairs: ``out[t]`` is the sorted
        distinct spectrum reached for tensor ``t`` (failed and
        unconverged lanes are excluded).

        Uses the batch captured at solve time; pass ``tensors=`` to
        override (required for results reloaded from disk, which carry
        no batch).  ``classify=True`` also fills residuals and stability
        labels (costs one Hessian eigendecomposition per pair).
        """
        batch = tensors if tensors is not None else self.tensors
        if batch is None:
            raise ValueError(
                "this FleetResult carries no tensor batch; pass tensors="
            )
        if len(batch) != self.num_tensors:
            raise ValueError(
                f"batch has {len(batch)} tensors but result has "
                f"{self.num_tensors}"
            )
        keep = self.converged & ~self.failed
        return [
            dedupe_eigenpairs(
                self.eigenvalues[t],
                self.eigenvectors[t],
                batch.m,
                tensor=batch[t] if classify else None,
                lambda_tol=lambda_tol,
                angle_tol=angle_tol,
                classify=classify,
                converged_mask=keep[t],
            )
            for t in range(self.num_tensors)
        ]

    def summary(self) -> str:
        """One-line human summary (used by the CLI)."""
        T, V = self.eigenvalues.shape
        return (
            f"{T} tensors x {V} starts: "
            f"{int(self.converged.sum())}/{T * V} lanes converged "
            f"({int(self.failed.sum())} failed) in {self.sweeps} sweeps "
            f"[{self.variant or 'default'} plan, "
            f"{self.compactions} compactions]"
        )
