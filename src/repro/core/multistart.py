"""Batched multistart SS-HOPM — the computation the paper maps to the GPU.

The full problem (Section V): for every tensor in a batch, run SS-HOPM from
``V`` starting vectors.  On the GPU this is one thread per (tensor, vector)
pair; here every pair advances in lockstep through vectorized kernels, with
a convergence mask freezing finished pairs (the SIMT analog: a converged
thread still occupies its lane but does no further useful work — we simply
stop updating it).

Every thread block shares the same starting-vector set, exactly as in the
paper ("every thread block can use the same set of starting vectors").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import SolveConfig, reconcile_max_iters, resolve_option
from repro.core.results import warn_renamed_field
from repro.instrument import current_recorder, gauge as _gauge
from repro.instrument import span as _span
from repro.instrument.metrics import observe_solver_run
from repro.instrument.telemetry import ConvergenceTelemetry, telemetry_enabled
from repro.kernels.dispatch import get_kernels
from repro.resilience.guards import SolveFailure, record_solve_failure, resolve_guards
from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch
from repro.util.flopcount import FlopCounter, null_counter
from repro.util.rng import fibonacci_sphere, random_unit_vectors

__all__ = ["MultistartResult", "multistart_sshopm", "starting_vectors"]


@dataclass
class MultistartResult:
    """Results of batched multistart SS-HOPM.

    Shapes below use ``T`` = number of tensors, ``V`` = starting vectors per
    tensor, ``n`` = mode dimension.

    Attributes
    ----------
    eigenvalues : ``(T, V)`` final ``lambda`` per (tensor, start).
    eigenvectors : ``(T, V, n)`` final unit vectors.
    converged : ``(T, V)`` bool.
    iterations : ``(T, V)`` iterations until each pair froze.
    sweeps : lockstep iteration sweeps executed (max over pairs);
        ``total_sweeps`` is the deprecated pre-1.2 spelling.
    telemetry : per-sweep aggregate convergence stream
        (:class:`~repro.instrument.telemetry.ConvergenceTelemetry`; mean
        lambda / max residual / mean step over the still-active pairs)
        when telemetry was enabled for the run, else ``None``.
    failed : ``(T, V)`` bool — lanes that *numerically died* (update
        collapsed to zero or went NaN/Inf) as opposed to merely running
        out of iterations; ``None`` for results loaded from files written
        before this field existed.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    converged: np.ndarray
    iterations: np.ndarray
    sweeps: int
    telemetry: ConvergenceTelemetry | None = None
    failed: np.ndarray | None = None

    @property
    def num_tensors(self) -> int:
        return self.eigenvalues.shape[0]

    @property
    def num_starts(self) -> int:
        return self.eigenvalues.shape[1]

    @property
    def total_sweeps(self) -> int:
        """Deprecated alias of :attr:`sweeps` (pre-1.2 spelling)."""
        warn_renamed_field("total_sweeps", "sweeps")
        return self.sweeps

    def eigenpairs(
        self,
        tensors: SymmetricTensorBatch | SymmetricTensor,
        lambda_tol: float = 1e-5,
        angle_tol: float = 1e-2,
        classify: bool = False,
    ) -> list[list]:
        """Per-tensor deduplicated eigenpairs from the converged lanes.

        ``tensors`` must be the batch (or single tensor) the result was
        computed from; it supplies ``m`` for sign canonicalization and,
        with ``classify=True``, the residual/stability classification.
        Returns one list of :class:`~repro.core.eigenpairs.Eigenpair`
        per tensor.
        """
        from repro.core.eigenpairs import dedupe_eigenpairs

        if isinstance(tensors, SymmetricTensor):
            tensors = SymmetricTensorBatch(
                tensors.values[None, :], tensors.m, tensors.n
            )
        if len(tensors) != self.num_tensors:
            raise ValueError(
                f"batch has {len(tensors)} tensors but result has "
                f"{self.num_tensors}"
            )
        keep = self.converged
        if self.failed is not None:
            keep = keep & ~self.failed
        return [
            dedupe_eigenpairs(
                self.eigenvalues[t],
                self.eigenvectors[t],
                tensors.m,
                tensor=tensors[t] if classify else None,
                lambda_tol=lambda_tol,
                angle_tol=angle_tol,
                classify=classify,
                converged_mask=keep[t],
            )
            for t in range(self.num_tensors)
        ]


def starting_vectors(
    count: int,
    n: int,
    scheme: str = "random",
    rng=None,
    dtype=np.float64,
) -> np.ndarray:
    """Generate the shared ``(count, n)`` starting-vector set.

    ``scheme="random"`` draws uniform entries in ``[-1, 1]`` and normalizes
    (the paper's choice); ``scheme="fibonacci"`` returns the deterministic
    evenly-spaced alternative the paper mentions (``n == 3`` only).
    """
    if scheme == "random":
        return random_unit_vectors(count, n, rng=rng, dtype=dtype)
    if scheme == "fibonacci":
        if n != 3:
            raise ValueError("fibonacci scheme is defined on the 2-sphere (n=3)")
        return fibonacci_sphere(count, dtype=dtype)
    raise ValueError(f"unknown starting-vector scheme {scheme!r}")


def multistart_sshopm(
    tensors: SymmetricTensorBatch | SymmetricTensor,
    num_starts: int | None = None,
    alpha: float | None = None,
    tol: float | None = None,
    max_iters: int | None = None,
    starts: np.ndarray | None = None,
    scheme: str | None = None,
    backend: str | None = None,
    dtype=None,
    rng=None,
    counter: FlopCounter | None = None,
    config: SolveConfig | None = None,
    *,
    telemetry: bool | None = None,
    guards=None,
    max_iter: int | None = None,
) -> MultistartResult:
    """Run SS-HOPM for every (tensor, starting vector) pair in lockstep.

    Parameters
    ----------
    tensors : a batch (or single tensor, treated as a batch of one).
    num_starts : ``V`` (default 128); ignored when ``starts`` is given
        explicitly.
    alpha : shift, as in :func:`repro.core.sshopm.sshopm` (default 0).
    tol : per-pair convergence threshold on ``|delta lambda|``
        (default ``1e-10``).
    max_iters : lockstep sweep cap (default 500; ``max_iter=`` is the
        deprecated spelling).
    starts : optional explicit ``(V, n)`` start set shared by all tensors.
    scheme : start generation scheme when ``starts`` is None
        (default ``"random"``).
    backend : batched kernel variant, resolved through
        ``get_kernels(backend, m, n, batched=True)``: ``"batched"`` /
        ``"vectorized"`` (table-driven vectorized kernels),
        ``"batched_unrolled"`` / ``"unrolled"`` (the Section V-D
        code-generated kernels broadcast over the batch), or ``"blocked"``
        (the Section VI blocked decomposition — fastest for larger ``n``).
        Results are identical; they differ in speed, mirroring the paper's
        general-vs-unrolled comparison.
    dtype : compute precision; the paper uses single precision
        (``np.float32``) on the GPU, float64 by default here.
    counter : optional flop counter (charged per active sweep).  When a
        recorder is active the same charges also land on the trace.
    config : a :class:`~repro.core.config.SolveConfig` supplying defaults
        for any option not passed explicitly.
    telemetry : record a per-sweep aggregate convergence stream on the
        result.  ``None`` (the default) enables it exactly when a recorder
        is active.
    guards : ``True`` or a :class:`~repro.resilience.guards.GuardConfig`
        raises a structured :class:`~repro.resilience.guards.SolveFailure`
        when *every* lane dies numerically (total collapse — nothing
        recoverable).  Individual dead lanes are always tolerated, frozen,
        and reported via the result's ``failed`` mask.

    Notes
    -----
    Converged pairs are frozen: their ``x`` stops updating, so later sweeps
    cannot drift them off the fixed point.  A pair whose update collapses to
    the zero vector (possible with alpha=0) is frozen unconverged and
    flagged in ``result.failed``; the dead-lane count lands on the
    ``repro_multistart_dead_lanes_total`` metric.
    """
    max_iters = reconcile_max_iters(max_iters, max_iter)
    num_starts = resolve_option("num_starts", num_starts, config, 128)
    alpha = resolve_option("alpha", alpha, config, 0.0)
    tol = resolve_option("tol", tol, config, 1e-10)
    max_iters = resolve_option("max_iters", max_iters, config, 500)
    scheme = resolve_option("scheme", scheme, config, "random")
    backend = resolve_option("backend", backend, config, "batched")
    dtype = resolve_option("dtype", dtype, config, np.float64)
    rng = resolve_option("rng", rng, config, None)
    guards = resolve_guards(resolve_option("guards", guards, config, None))

    if isinstance(tensors, SymmetricTensor):
        tensors = SymmetricTensorBatch(tensors.values[None, :], tensors.m, tensors.n)
    counter = counter or null_counter()
    recorder = current_recorder()
    if recorder is not None:
        counter = recorder.flop_counter(mirror=counter)
    m, n = tensors.m, tensors.n
    T = len(tensors)

    if starts is None:
        starts = starting_vectors(num_starts, n, scheme=scheme, rng=rng, dtype=dtype)
    else:
        starts = np.asarray(starts, dtype=dtype)
        if starts.ndim != 2 or starts.shape[1] != n:
            raise ValueError(f"starts must have shape (V, {n}), got {starts.shape}")
        norms = np.linalg.norm(starts, axis=1, keepdims=True)
        if np.any(norms == 0):
            raise ValueError("starting vectors must be nonzero")
        starts = starts / norms
    V = starts.shape[0]

    suite = get_kernels(backend, m, n, batched=True)
    if recorder is None:
        kernels_ax_m = lambda a, x: suite.ax_m(a, x, counter=counter)  # noqa: E731
        kernels_ax_m1 = lambda a, x: suite.ax_m1(a, x, counter=counter)  # noqa: E731
    else:
        from repro.instrument.kernels import kernel_cost_model

        scalar_span = f"kernel.{suite.name}.ax_m"
        vector_span = f"kernel.{suite.name}.ax_m1"
        cost = kernel_cost_model(m, n)
        item = np.dtype(dtype).itemsize
        bytes_scalar = (cost["loads"] + cost["stores_scalar"]) * item
        bytes_vector = (cost["loads"] + cost["stores_vector"]) * item

        def kernels_ax_m(a, x):
            with _span(scalar_span):
                y = suite.ax_m(a, x, counter=counter)
                recorder.add("bytes", T * V * bytes_scalar)
            return y

        def kernels_ax_m1(a, x):
            with _span(vector_span):
                y = suite.ax_m1(a, x, counter=counter)
                recorder.add("bytes", T * V * bytes_vector)
            return y

    _gauge("multistart.tensors", T)
    _gauge("multistart.starts", V)
    _gauge("multistart.backend", suite.name)
    _gauge("multistart.shape", [m, n])

    tel = None
    if telemetry_enabled(telemetry, recorder):
        tel = ConvergenceTelemetry(
            "multistart_sshopm",
            meta={"tensors": T, "starts": V, "alpha": alpha,
                  "backend": suite.name, "shape": [m, n]},
        )

    t0 = time.perf_counter()
    with _span("multistart_sshopm"):
        values = tensors.values.astype(dtype)[:, None, :]  # (T, 1, U)
        x = np.broadcast_to(starts[None, :, :], (T, V, n)).astype(dtype).copy()
        lam = np.asarray(kernels_ax_m(values, x), dtype=dtype)  # (T, V)

        active = np.ones((T, V), dtype=bool)
        converged = np.zeros((T, V), dtype=bool)
        iterations = np.zeros((T, V), dtype=np.int64)
        failed = np.zeros((T, V), dtype=bool)
        sweeps = 0
        sign = -1.0 if alpha < 0 else 1.0

        for _ in range(max_iters):
            if not active.any():
                break
            sweeps += 1
            with _span("sweep"):
                y = np.asarray(kernels_ax_m1(values, x))
                x_new = y + alpha * x if alpha != 0.0 else y
                if sign < 0:
                    x_new = -x_new
                norms = np.linalg.norm(x_new, axis=-1)
                dead = active & ((norms == 0) | ~np.isfinite(norms))
                failed |= dead
                safe = np.where(norms > 0, norms, 1.0)
                x_next = x_new / safe[..., None]
                # freeze inactive and dead pairs at their current iterate
                upd = active & ~dead
                if tel is not None and upd.any():
                    # residual/step at the pre-update iterate (y = A x^{m-1})
                    resid_now = np.linalg.norm(
                        y - lam[..., None] * x, axis=-1)[upd]
                    step_now = np.linalg.norm(x_next - x, axis=-1)[upd]
                x[upd] = x_next[upd]
                lam_new = np.asarray(kernels_ax_m(values, x), dtype=dtype)
                just_converged = upd & (np.abs(lam_new - lam) < tol)
                lam = np.where(upd, lam_new, lam)
                iterations[upd] += 1
                converged |= just_converged
                if tel is not None and upd.any():
                    tel.append(
                        sweeps, float(lam_new[upd].mean()),
                        residual=float(resid_now.max()),
                        shift=alpha,
                        step_norm=float(step_now.mean()),
                        active=int(upd.sum()),
                    )
                active &= ~(just_converged | dead)

        with _span("residuals"):
            residual_vec = kernels_ax_m1(values, x) - lam[..., None] * x
            residuals = np.linalg.norm(residual_vec, axis=-1)
            # guard against pairs that froze on a non-fixed point being
            # marked good
            converged &= np.isfinite(residuals)
            failed |= ~np.isfinite(lam) | ~np.isfinite(residuals)

    if tel is not None:
        finite = residuals[np.isfinite(residuals)]
        tel.append(
            sweeps, float(lam.mean()),
            residual=float(finite.max()) if finite.size else float("nan"),
            shift=alpha,
            active=int(active.sum()),
            force=True,
        )
        if recorder is not None:
            recorder.add_telemetry(tel)
    observe_solver_run("multistart_sshopm", time.perf_counter() - t0,
                       iterations, int(converged.sum()), T * V)
    dead_lanes = int(failed.sum())
    if dead_lanes:
        from repro.instrument.metrics import get_registry

        get_registry().counter(
            "repro_multistart_dead_lanes_total",
            "(tensor, start) lanes that died numerically mid-sweep",
        ).inc(dead_lanes)
    if guards is not None and guards.check_finite and dead_lanes == T * V:
        record_solve_failure("multistart_sshopm", "collapse")
        raise SolveFailure(
            "collapse",
            f"multistart_sshopm: all {T * V} lanes died numerically "
            f"(alpha={alpha})",
            solver="multistart_sshopm",
            iteration=sweeps,
            telemetry=tel,
            details={"tensors": T, "starts": V},
        )
    return MultistartResult(
        eigenvalues=lam,
        eigenvectors=x,
        converged=converged,
        iterations=iterations,
        sweeps=sweeps,
        telemetry=tel,
        failed=failed,
    )
