"""The paper's primary contribution: SS-HOPM and eigenpair extraction.

The solver implementations moved to :mod:`repro.solvers` in PR 10; the
function names below stay re-exported for compatibility.  The shim
submodules must enter ``sys.modules`` *before* the function names are
bound, otherwise a later ``from repro.core.sshopm import ...`` would
set the submodule as the package attribute and shadow the function.
"""

from repro.core import adaptive as _shim_adaptive  # noqa: F401
from repro.core import sshopm as _shim_sshopm  # noqa: F401
from repro.solvers.adaptive import adaptive_sshopm
from repro.core.config import SolveConfig
from repro.core.basins import (
    BasinMap,
    basin_map,
    render_basin_map,
    starts_needed_estimate,
)
from repro.core.exact import eigen_polynomial_n2, exact_eigenpairs_n2
from repro.core.eigenpairs import (
    Eigenpair,
    canonicalize_sign,
    classify_eigenpair,
    dedupe_eigenpairs,
    eigen_residual,
    hessian_matrix,
    projected_hessian_eigenvalues,
)
from repro.core.multistart import MultistartResult, multistart_sshopm, starting_vectors
from repro.core.refine import NewtonResult, newton_refine, refine_pairs
from repro.core.results import FleetResult, ResultProtocol
from repro.core.solve import find_eigenpairs, find_eigenpairs_batch
from repro.solvers.sshopm import SSHOPMResult, sshopm, suggested_shift
from repro.core.theory import (
    ConvergenceAnalysis,
    analyze_fixed_point,
    estimate_rate,
    is_attracting,
    minimal_attracting_shift,
)

__all__ = [
    "adaptive_sshopm",
    "SolveConfig",
    "BasinMap",
    "basin_map",
    "render_basin_map",
    "starts_needed_estimate",
    "eigen_polynomial_n2",
    "exact_eigenpairs_n2",
    "Eigenpair",
    "canonicalize_sign",
    "classify_eigenpair",
    "dedupe_eigenpairs",
    "eigen_residual",
    "hessian_matrix",
    "projected_hessian_eigenvalues",
    "FleetResult",
    "MultistartResult",
    "ResultProtocol",
    "multistart_sshopm",
    "starting_vectors",
    "NewtonResult",
    "newton_refine",
    "refine_pairs",
    "find_eigenpairs",
    "find_eigenpairs_batch",
    "SSHOPMResult",
    "sshopm",
    "suggested_shift",
    "ConvergenceAnalysis",
    "analyze_fixed_point",
    "estimate_rate",
    "is_attracting",
    "minimal_attracting_shift",
]
