"""Deprecated import location — the adaptive-shift solver moved to
:mod:`repro.solvers.adaptive` (and :mod:`repro.solvers.geap` holds the
projected-Hessian variant).

PR 10 made the solvers a pluggable subsystem (``repro.solvers``) routed
by ``repro.solve(method=...)``; this module survives as a shim so
``from repro.core.adaptive import adaptive_sshopm`` keeps working with a
:class:`DeprecationWarning` blaming the caller.  Import from
:mod:`repro.solvers` (or use the facade with ``method="geap"``) instead.
"""

from __future__ import annotations

from repro.kernels._deprecation import warn_deprecated

_FORWARDED = ("adaptive_sshopm",)

__all__ = list(_FORWARDED)


def __getattr__(name: str):
    if name in _FORWARDED:
        warn_deprecated(
            f"repro.core.adaptive.{name}",
            f"import it from repro.solvers (repro.solvers.{name})",
        )
        from importlib import import_module

        return getattr(import_module('repro.solvers.adaptive'), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_FORWARDED))
