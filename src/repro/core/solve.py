"""High-level eigenpair solvers: the public entry points most users want.

``find_eigenpairs`` runs multistart SS-HOPM on one tensor and returns the
deduplicated, classified spectrum; ``find_eigenpairs_batch`` does the same
for a whole batch (the paper's voxel workload) with shared starting vectors.
Both accept a :class:`~repro.core.config.SolveConfig` and record
``solve`` / ``dedupe`` spans when a recorder is active
(:mod:`repro.instrument`).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SolveConfig, reconcile_max_iters, resolve_option
from repro.core.eigenpairs import Eigenpair, dedupe_eigenpairs
from repro.core.multistart import MultistartResult, multistart_sshopm
from repro.instrument import span as _span
from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch

__all__ = ["find_eigenpairs", "find_eigenpairs_batch"]


def find_eigenpairs(
    tensor: SymmetricTensor,
    num_starts: int | None = None,
    alpha: float | None = None,
    tol: float | None = None,
    max_iters: int | None = None,
    scheme: str | None = None,
    classify: bool = True,
    lambda_tol: float = 1e-6,
    angle_tol: float = 1e-3,
    rng=None,
    config: SolveConfig | None = None,
    *,
    max_iter: int | None = None,
) -> list[Eigenpair]:
    """Real eigenpairs of ``tensor`` reachable by SS-HOPM multistart.

    Runs ``num_starts`` SS-HOPM instances (batched), dedupes the converged
    results, and (by default) classifies each pair's stability.  With
    ``alpha >= 0`` the attracting pairs include all local maxima of
    ``f(x) = A x^m``; run again with a negative shift to also reach local
    minima.  Returns pairs sorted by descending eigenvalue.

    Defaults: ``num_starts=128``, ``alpha=0``, ``tol=1e-12``,
    ``max_iters=1000``, ``scheme="random"``; any can come from ``config``
    (``max_iter=`` is the deprecated spelling of ``max_iters=``).
    """
    max_iters = reconcile_max_iters(max_iters, max_iter)
    tol = resolve_option("tol", tol, config, 1e-12)
    max_iters = resolve_option("max_iters", max_iters, config, 1000)

    with _span("find_eigenpairs"):
        result = multistart_sshopm(
            tensor,
            num_starts=num_starts,
            alpha=alpha,
            tol=tol,
            max_iters=max_iters,
            scheme=scheme,
            rng=rng,
            config=config,
        )
        with _span("dedupe"):
            return dedupe_eigenpairs(
                result.eigenvalues[0],
                result.eigenvectors[0],
                tensor.m,
                tensor=tensor,
                lambda_tol=lambda_tol,
                angle_tol=angle_tol,
                classify=classify,
                converged_mask=result.converged[0],
            )


def find_eigenpairs_batch(
    tensors: SymmetricTensorBatch,
    num_starts: int | None = None,
    alpha: float | None = None,
    tol: float | None = None,
    max_iters: int | None = None,
    scheme: str | None = None,
    classify: bool = False,
    lambda_tol: float = 1e-5,
    angle_tol: float = 1e-2,
    rng=None,
    config: SolveConfig | None = None,
    *,
    max_iter: int | None = None,
) -> tuple[list[list[Eigenpair]], MultistartResult]:
    """Per-tensor deduplicated eigenpairs for a whole batch.

    Returns ``(pairs, raw)`` where ``pairs[t]`` is the sorted eigenpair list
    of tensor ``t`` and ``raw`` is the underlying
    :class:`~repro.core.multistart.MultistartResult` (useful for
    convergence statistics).  Defaults as in :func:`find_eigenpairs` except
    ``tol=1e-10`` and ``max_iters=500``.
    """
    max_iters = reconcile_max_iters(max_iters, max_iter)

    with _span("find_eigenpairs_batch"):
        raw = multistart_sshopm(
            tensors,
            num_starts=num_starts,
            alpha=alpha,
            tol=tol,
            max_iters=max_iters,
            scheme=scheme,
            rng=rng,
            config=config,
        )
        with _span("dedupe"):
            pairs = [
                dedupe_eigenpairs(
                    raw.eigenvalues[t],
                    raw.eigenvectors[t],
                    tensors.m,
                    tensor=tensors[t] if classify else None,
                    lambda_tol=lambda_tol,
                    angle_tol=angle_tol,
                    classify=classify,
                    converged_mask=raw.converged[t],
                )
                for t in range(len(tensors))
            ]
    return pairs, raw
