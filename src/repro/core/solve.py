"""High-level eigenpair solvers: the public entry points most users want.

``find_eigenpairs`` runs multistart SS-HOPM on one tensor and returns the
deduplicated, classified spectrum; ``find_eigenpairs_batch`` does the same
for a whole batch (the paper's voxel workload) with shared starting vectors.
"""

from __future__ import annotations

import numpy as np

from repro.core.eigenpairs import Eigenpair, dedupe_eigenpairs
from repro.core.multistart import MultistartResult, multistart_sshopm
from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch

__all__ = ["find_eigenpairs", "find_eigenpairs_batch"]


def find_eigenpairs(
    tensor: SymmetricTensor,
    num_starts: int = 128,
    alpha: float = 0.0,
    tol: float = 1e-12,
    max_iter: int = 1000,
    scheme: str = "random",
    classify: bool = True,
    lambda_tol: float = 1e-6,
    angle_tol: float = 1e-3,
    rng=None,
) -> list[Eigenpair]:
    """Real eigenpairs of ``tensor`` reachable by SS-HOPM multistart.

    Runs ``num_starts`` SS-HOPM instances (batched), dedupes the converged
    results, and (by default) classifies each pair's stability.  With
    ``alpha >= 0`` the attracting pairs include all local maxima of
    ``f(x) = A x^m``; run again with a negative shift to also reach local
    minima.  Returns pairs sorted by descending eigenvalue.
    """
    result = multistart_sshopm(
        tensor,
        num_starts=num_starts,
        alpha=alpha,
        tol=tol,
        max_iter=max_iter,
        scheme=scheme,
        rng=rng,
    )
    return dedupe_eigenpairs(
        result.eigenvalues[0],
        result.eigenvectors[0],
        tensor.m,
        tensor=tensor,
        lambda_tol=lambda_tol,
        angle_tol=angle_tol,
        classify=classify,
        converged_mask=result.converged[0],
    )


def find_eigenpairs_batch(
    tensors: SymmetricTensorBatch,
    num_starts: int = 128,
    alpha: float = 0.0,
    tol: float = 1e-10,
    max_iter: int = 500,
    scheme: str = "random",
    classify: bool = False,
    lambda_tol: float = 1e-5,
    angle_tol: float = 1e-2,
    rng=None,
) -> tuple[list[list[Eigenpair]], MultistartResult]:
    """Per-tensor deduplicated eigenpairs for a whole batch.

    Returns ``(pairs, raw)`` where ``pairs[t]`` is the sorted eigenpair list
    of tensor ``t`` and ``raw`` is the underlying
    :class:`~repro.core.multistart.MultistartResult` (useful for
    convergence statistics).
    """
    raw = multistart_sshopm(
        tensors,
        num_starts=num_starts,
        alpha=alpha,
        tol=tol,
        max_iter=max_iter,
        scheme=scheme,
        rng=rng,
    )
    pairs = [
        dedupe_eigenpairs(
            raw.eigenvalues[t],
            raw.eigenvectors[t],
            tensors.m,
            tensor=tensors[t] if classify else None,
            lambda_tol=lambda_tol,
            angle_tol=angle_tol,
            classify=classify,
            converged_mask=raw.converged[t],
        )
        for t in range(len(tensors))
    ]
    return pairs, raw
