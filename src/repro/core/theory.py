"""Convergence theory for SS-HOPM (after Kolda & Mayo).

The paper uses SS-HOPM's convergence guarantees operationally; this module
makes the underlying fixed-point analysis available:

Linearizing the iteration map
``phi(x) = (A x^{m-1} + alpha x) / ||A x^{m-1} + alpha x||`` at an
eigenpair ``(lambda, x)`` gives, on the tangent space of the sphere,

    d phi = (C + alpha I) / (lambda + alpha),    C = (m-1) A x^{m-2},

so the pair is **attracting** iff every tangent eigenvalue ``mu_i`` of
``C`` satisfies ``|mu_i + alpha| < |lambda + alpha|``, and the asymptotic
linear rate is ``rho = max_i |mu_i + alpha| / |lambda + alpha|``.
Consequences implemented and tested here:

* a pair can be made attracting by *some* nonnegative shift iff it is
  positive stable (``mu_i < lambda`` for all ``i``) — the link between the
  stability classification and which pairs multistart can find;
* the smallest such shift is ``max(0, max_i -(mu_i + lambda)/2)`` (plus a
  margin), typically far below the conservative global bound — why the
  adaptive method is faster;
* the measured geometric decay of ``|lambda_k - lambda_inf|`` approaches
  ``rho^2`` (eigenvalue error is quadratic in the eigenvector error for
  symmetric problems).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.eigenpairs import hessian_matrix, projected_hessian_eigenvalues
from repro.symtensor.storage import SymmetricTensor

__all__ = [
    "ConvergenceAnalysis",
    "analyze_fixed_point",
    "is_attracting",
    "minimal_attracting_shift",
    "estimate_rate",
]


@dataclass(frozen=True)
class ConvergenceAnalysis:
    """Fixed-point analysis of SS-HOPM at one eigenpair and shift.

    Attributes
    ----------
    tangent_eigenvalues : eigenvalues ``mu_i`` of the projected ``C``.
    multipliers : ``|mu_i + alpha| / |lambda + alpha|`` per direction.
    rate : the largest multiplier (``< 1`` iff attracting).
    attracting : whether the pair attracts the shifted iteration.
    """

    eigenvalue: float
    alpha: float
    tangent_eigenvalues: np.ndarray
    multipliers: np.ndarray
    rate: float
    attracting: bool


def analyze_fixed_point(
    tensor: SymmetricTensor, lam: float, x: np.ndarray, alpha: float
) -> ConvergenceAnalysis:
    """Linearized convergence analysis at an eigenpair under shift ``alpha``."""
    x = np.asarray(x, dtype=np.float64)
    # tangent eigenvalues of C = (m-1) A x^{m-2}: shift the projected
    # (C - lambda I) spectrum back by lambda
    mus = projected_hessian_eigenvalues(tensor, lam, x) + lam
    denom = abs(lam + alpha)
    if denom < 1e-300:
        multipliers = np.full_like(mus, np.inf)
    else:
        multipliers = np.abs(mus + alpha) / denom
    rate = float(multipliers.max()) if multipliers.size else 0.0
    return ConvergenceAnalysis(
        eigenvalue=float(lam),
        alpha=float(alpha),
        tangent_eigenvalues=mus,
        multipliers=multipliers,
        rate=rate,
        attracting=bool(rate < 1.0),
    )


def is_attracting(
    tensor: SymmetricTensor, lam: float, x: np.ndarray, alpha: float
) -> bool:
    """True iff the eigenpair attracts the alpha-shifted iteration."""
    return analyze_fixed_point(tensor, lam, x, alpha).attracting


def minimal_attracting_shift(
    tensor: SymmetricTensor, lam: float, x: np.ndarray, margin: float = 1e-6
) -> float:
    """The smallest nonnegative shift making the pair attracting (plus
    ``margin``), or ``inf`` if no nonnegative shift can (the pair is not
    positive stable).

    Derivation: with ``lambda + alpha > 0``, attraction needs
    ``mu_i < lambda`` (upper side, shift-independent) and
    ``alpha > -(mu_i + lambda)/2`` (lower side).
    """
    x = np.asarray(x, dtype=np.float64)
    mus = projected_hessian_eigenvalues(tensor, lam, x) + lam
    if mus.size == 0:
        return 0.0
    if np.any(mus >= lam):
        return float("inf")
    lower = float(np.max(-(mus + lam) / 2.0))
    alpha = max(0.0, lower) + margin
    # the derivation assumed lambda + alpha > 0
    if lam + alpha <= 0:
        alpha = -lam + margin
    return float(alpha)


def estimate_rate(lambda_history, tail: int = 10) -> float:
    """Empirical geometric decay rate of ``|lambda_k - lambda_inf|`` from
    an SS-HOPM ``lambda_history`` (uses the final value as the limit and
    the geometric mean of successive error ratios over the tail).

    Returns ``nan`` when the history is too short or already at rounding
    level.
    """
    hist = np.asarray(lambda_history, dtype=np.float64)
    if hist.size < 8:
        return float("nan")
    lam_inf = hist[-1]
    errs = np.abs(hist[:-1] - lam_inf)
    good = errs > max(1e-14, 1e-12 * abs(lam_inf))
    idx = np.nonzero(good)[0]
    if idx.size < 4:
        return float("nan")
    # drop the last quarter of the usable range: using hist[-1] as the
    # limit biases the errors closest to it
    idx = idx[: max(3, int(np.ceil(0.75 * idx.size)))]
    idx = idx[-(tail + 1):]
    ratios = errs[idx[1:]] / errs[idx[:-1]]
    ratios = ratios[(ratios > 0) & np.isfinite(ratios)]
    if ratios.size == 0:
        return float("nan")
    return float(np.exp(np.mean(np.log(ratios))))
