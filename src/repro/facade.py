"""``repro.solve`` — one front door for every eigensolver in the package.

The solvers grew up separately: :func:`~repro.core.sshopm.sshopm` for one
tensor and one start, :func:`~repro.core.adaptive.adaptive_sshopm` for
the self-tuning shift, :func:`~repro.core.multistart.multistart_sshopm`
for the lockstep multistart, and the fleet engine
(:func:`~repro.engine.fleet.fleet_solve`) for whole-workload scheduling.
Choosing among them is mechanical — it depends only on the *shape* of the
request (one tensor or a batch? one start or many? fixed or adaptive
shift? how many workers?) — so the facade makes the choice:

>>> import repro
>>> report = repro.solve(tensor)                      # one start: sshopm
>>> report = repro.solve(tensor, starts=64)           # multistart
>>> report = repro.solve(batch, starts=32)            # fleet engine
>>> report.result.eigenpairs(...)                     # ResultProtocol

Every report wraps a result satisfying
:class:`~repro.core.results.ResultProtocol`, so downstream code reads
``.converged`` / ``.telemetry`` / ``.eigenpairs()`` without caring which
solver ran.  See ``docs/api.md`` for the full reference and the
migration table from the per-solver entry points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import SolveConfig
from repro.core.results import ResultProtocol
from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch

__all__ = ["SolveReport", "SolveRequest", "solve"]


@dataclass
class SolveRequest:
    """A fully-specified solve, ready to route.

    ``starts`` follows :func:`solve`'s convention: ``None`` (one random
    start), an ``int`` count, a 1-D array (one explicit start), or a 2-D
    ``(V, n)`` array of explicit starts.  ``options`` carries any extra
    keyword arguments forwarded verbatim to the routed solver.
    ``method`` holds the *resolved* solver method (``"auto"`` is resolved
    before the request is routed); ``None`` means the legacy
    shape-routing with SS-HOPM solvers.
    """

    problem: SymmetricTensorBatch | SymmetricTensor
    starts: int | np.ndarray | None = None
    alpha: float | None = None
    tol: float | None = None
    max_iters: int | None = None
    adaptive: bool = False
    workers: int = 1
    config: SolveConfig | None = None
    rng: Any = None
    options: dict = field(default_factory=dict)
    method: str | None = None

    @property
    def is_batch(self) -> bool:
        return isinstance(self.problem, SymmetricTensorBatch)

    @property
    def num_starts(self) -> int:
        """Starting vectors the request asks for (0 = solver default)."""
        if self.starts is None:
            return 1
        if isinstance(self.starts, (int, np.integer)):
            return int(self.starts)
        arr = np.asarray(self.starts)
        return 1 if arr.ndim == 1 else arr.shape[0]

    def solver_name(self) -> str:
        """Which solver :func:`solve` will route this request to."""
        if self.method == "geap":
            if self.is_batch or self.num_starts > 1:
                # GEAP shares the fleet's lane machinery for multistart
                base = ("parallel_fleet_solve"
                        if self.is_batch and self.workers > 1
                        else "fleet_solve")
                return base + "+geap"
            return "geap"
        if self.method == "qrst":
            return "qrst_batch" if self.is_batch else "qrst"
        if self.method not in (None, "sshopm"):
            return self.method
        if self.is_batch or self.num_starts > 1:
            if self.is_batch and self.workers > 1:
                return "parallel_fleet_solve"
            if self.is_batch:
                return "fleet_solve"
            return "multistart_sshopm"
        return "adaptive_sshopm" if self.adaptive else "sshopm"


@dataclass
class SolveReport:
    """What :func:`solve` hands back.

    ``result`` satisfies :class:`~repro.core.results.ResultProtocol`;
    ``solver`` names the routed entry point (see
    :meth:`SolveRequest.solver_name`); ``seconds`` is end-to-end wall
    time; ``extra`` carries solver-specific side products (e.g. the
    :class:`~repro.parallel.fleet.FleetRunReport` of a parallel run).
    """

    result: ResultProtocol
    solver: str
    seconds: float
    request: SolveRequest
    extra: Any = None

    @property
    def converged(self):
        return self.result.converged

    @property
    def telemetry(self):
        return self.result.telemetry

    def eigenpairs(self, *args, **kwargs):
        return self.result.eigenpairs(*args, **kwargs)


def _split_starts(request: SolveRequest):
    """Normalize ``starts`` into (count or None, explicit array or None)."""
    s = request.starts
    if s is None:
        return None, None
    if isinstance(s, (int, np.integer)):
        return int(s), None
    arr = np.asarray(s, dtype=np.float64)
    if arr.ndim == 1:
        return 1, arr
    if arr.ndim == 2:
        return arr.shape[0], arr
    raise ValueError(f"starts must be an int or a 1-D/2-D array, got ndim={arr.ndim}")


def _fold_deadline(opts: dict, config: SolveConfig | None) -> dict:
    """Translate ``deadline=`` (or ``config.deadline``) into the solver's
    ``stop=`` hook, mirroring the fleet path's convention."""
    deadline = opts.pop("deadline", None)
    if deadline is None and config is not None:
        deadline = config.deadline
    if deadline is not None and "stop" not in opts:
        opts["stop"] = lambda: time.time() >= deadline
    return opts


# Options only the fleet/multistart drivers understand; uniform callers
# (the CLI passes its full flag set regardless of method) may hand them
# to geap/qrst, where they have no meaning and are dropped.
_FLEET_ONLY_OPTS = ("variant", "backend", "codegen_backend",
                    "compact_every", "scheme", "executor", "events")


def _strip_fleet_opts(opts: dict) -> dict:
    for key in _FLEET_ONLY_OPTS:
        opts.pop(key, None)
    return opts


def solve(
    problem: SymmetricTensorBatch | SymmetricTensor,
    starts: int | np.ndarray | None = None,
    alpha: float | None = None,
    tol: float | None = None,
    max_iters: int | None = None,
    config: SolveConfig | None = None,
    rng: Any = None,
    *,
    adaptive: bool = False,
    workers: int = 1,
    method: str | None = None,
    **options,
) -> SolveReport:
    """Solve a tensor eigenproblem, routing by the shape of the request.

    Parameters
    ----------
    problem : a :class:`~repro.symtensor.SymmetricTensor` or a
        :class:`~repro.symtensor.SymmetricTensorBatch`.
    starts : ``None`` (one random start), an ``int`` (that many shared
        random starts), a 1-D ``(n,)`` vector (one explicit start), or a
        2-D ``(V, n)`` array of explicit starts.
    alpha, tol, max_iters, config, rng : as in the underlying solvers;
        ``config`` supplies defaults for anything unset.
    adaptive : self-tuning shift.  Routes a single-start request to
        :func:`~repro.solvers.adaptive.adaptive_sshopm` and turns on the
        fleet engine's per-lane shift escalation for batch requests.
    method : solver method from the :mod:`repro.solvers` registry —
        ``"sshopm"`` (default behavior), ``"geap"`` (adaptive
        projected-Hessian shift; pass ``mode="min"`` for the concave
        case), ``"qrst"`` (deterministic tensor QR with deflation), any
        third-party registered name, or ``"auto"`` to route by problem
        shape and spectrum target
        (:func:`~repro.solvers.registry.choose_method`).  ``None``
        defers to ``config.method`` and then the legacy shape routing.
        See ``docs/solvers.md`` for the selection guide.
    workers : shard a batch request over this many workers via
        :func:`~repro.parallel.fleet.parallel_fleet_solve`; pass
        ``executor="process"`` (or ``"auto"``) in ``options`` to run them
        as zero-copy shared-memory worker processes instead of threads
        (see ``docs/parallel.md`` — results stay bit-for-bit identical
        to a single-worker run).
    **options : forwarded verbatim to the routed solver (e.g.
        ``variant=``/``backend=``, ``telemetry=``, ``guards=``,
        ``scheme=``, ``dtype=``, ``compact_every=``).  For batch
        requests ``backend=`` accepts either a codegen backend name
        (``"numpy"`` / ``"numba"`` / ``"cuda-src"``, selecting the
        compiler — see :mod:`repro.kernels.codegen`) or, for backward
        compatibility, a batched variant name; ``codegen_backend=``
        names the compiler unambiguously.

    Routing
    -------
    ==========================  =======================================
    request shape               solver
    ==========================  =======================================
    tensor, one start           ``sshopm`` / ``adaptive_sshopm``
    tensor, many starts         ``multistart_sshopm``
    batch (any starts)          ``fleet_solve``
    batch, ``workers > 1``      ``parallel_fleet_solve``
    ==========================  =======================================

    Returns a :class:`SolveReport`; ``report.result`` satisfies
    :class:`~repro.core.results.ResultProtocol` whichever solver ran.
    """
    from repro.core.config import resolve_option

    request = SolveRequest(
        problem=problem,
        starts=starts,
        alpha=alpha,
        tol=tol,
        max_iters=max_iters,
        adaptive=adaptive,
        workers=workers,
        config=config,
        rng=rng,
        options=dict(options),
    )
    method = resolve_option("method", method, config, None)
    if method is not None:
        from repro.solvers import choose_method, get_solver

        if method == "auto":
            method = choose_method(
                problem.m,
                problem.n,
                batch=request.is_batch,
                num_starts=request.num_starts,
                spectrum=str(options.get("mode", "max")),
            )
        else:
            get_solver(method)  # unknown names fail loudly up front
        request.method = method
    solver = request.solver_name()
    count, explicit = _split_starts(request)
    common = dict(alpha=alpha, tol=tol, max_iters=max_iters, config=config)
    extra = None

    from repro.instrument import gauge

    gauge("solve.method", request.method or "sshopm")
    gauge("solve.solver", solver)

    t0 = time.perf_counter()
    if solver == "geap":
        from repro.resilience.retry import run_with_retry
        from repro.solvers.geap import geap

        opts = _strip_fleet_opts(_fold_deadline(dict(options), config))
        x0 = explicit
        policy = config.retry if config is not None else None
        if policy is not None:
            outcome = run_with_retry(
                lambda attempt: geap(
                    problem, x0=x0 if attempt == 0 else None, tol=tol,
                    max_iters=max_iters, config=config, rng=rng, **opts,
                ),
                policy, solver="geap", rng=rng,
            )
            result, extra = outcome.result, outcome
        else:
            result = geap(problem, x0=x0, tol=tol, max_iters=max_iters,
                          config=config, rng=rng, **opts)
    elif solver == "qrst":
        from repro.resilience.retry import run_with_retry
        from repro.solvers.qrst import qrst

        opts = _strip_fleet_opts(_fold_deadline(dict(options), config))
        opts.pop("mode", None)  # QRST has no spectrum-target switch
        policy = config.retry if config is not None else None
        if policy is not None:
            outcome = run_with_retry(
                lambda attempt: qrst(
                    problem, tol=tol, max_iters=max_iters, config=config,
                    rng=rng, **opts,
                ),
                policy, solver="qrst", rng=rng,
            )
            result, extra = outcome.result, outcome
        else:
            result = qrst(problem, tol=tol, max_iters=max_iters,
                          config=config, rng=rng, **opts)
    elif solver == "qrst_batch":
        from repro.solvers.qrst import qrst_batch

        opts = _strip_fleet_opts(_fold_deadline(dict(options), config))
        opts.pop("mode", None)
        result = qrst_batch(
            problem, num_starts=count or 8, tol=tol, max_iters=max_iters,
            rng=rng, config=config, **opts,
        )
    elif request.method not in (None, "sshopm", "geap", "qrst"):
        result = _solve_custom_entry(request, count, tol, max_iters)
    elif solver in ("sshopm", "adaptive_sshopm"):
        x0 = explicit if explicit is not None else None
        if solver == "adaptive_sshopm":
            from repro.solvers.adaptive import adaptive_sshopm

            opts = dict(options)
            # adaptive picks its own shift trajectory; alpha seeds it as tau
            opts.pop("variant", None)
            result = adaptive_sshopm(
                problem, x0=x0, tol=tol, max_iters=max_iters,
                config=config, rng=rng, **opts,
            )
        else:
            from repro.solvers.sshopm import sshopm

            result = sshopm(problem, x0=x0, rng=rng, **common, **options)
    elif solver == "multistart_sshopm":
        from repro.core.multistart import multistart_sshopm

        result = multistart_sshopm(
            problem, num_starts=count, starts=explicit, rng=rng,
            **common, **options,
        )
    else:
        batch = problem
        fleet_opts = dict(options)
        if request.method == "geap":
            # GEAP rides the fleet lanes with per-sweep projected shifts;
            # a multistart single tensor runs as a singleton batch
            if fleet_opts.pop("mode", "max") != "max":
                raise ValueError(
                    "method='geap' with mode='min' is single-start only; "
                    "drop starts= or run per-start geap(mode='min') calls"
                )
            adaptive = "geap"
            if not request.is_batch:
                batch = SymmetricTensorBatch.from_tensors([problem])
        # ``backend=`` is overloaded by history: codegen backend names
        # ("numpy"/"numba"/"cuda-src") select the compiler; anything else
        # is the multistart spelling of variant= ("auto" included — it
        # predates the codegen axis and still means the variant race;
        # spell codegen racing as codegen_backend="auto" or a direct
        # fleet_solve(backend="auto") call).
        if "backend" in fleet_opts:
            from repro.kernels.codegen import available_backends

            if fleet_opts["backend"] not in (*available_backends(), "cuda"):
                if "variant" not in fleet_opts:
                    fleet_opts["variant"] = fleet_opts.pop("backend")
                else:
                    fleet_opts.pop("backend")
        if "codegen_backend" in fleet_opts:
            fleet_opts["backend"] = fleet_opts.pop("codegen_backend")
        if solver.startswith("parallel_fleet_solve"):
            from repro.parallel.fleet import parallel_fleet_solve

            kwargs = dict(
                workers=workers, alpha=alpha or 0.0, tol=tol or 1e-10,
                max_iters=max_iters or 500, starts=explicit, rng=rng,
                config=config, adaptive=adaptive, **fleet_opts,
            )
            if count is not None and explicit is None:
                kwargs["num_starts"] = count
            report = parallel_fleet_solve(batch, **kwargs)
            result, extra = report.result, report
        else:
            from repro.engine.fleet import fleet_solve
            from repro.instrument.events import (
                EventSpool,
                current_spool,
                use_spool,
            )

            # executor-tier options are meaningless without sharding
            for key in ("executor", "steal", "start_method"):
                fleet_opts.pop(key, None)
            # the engine speaks stop= only; fold a deadline into the hook
            deadline = fleet_opts.pop("deadline", None)
            if deadline is None and config is not None:
                deadline = config.deadline
            if deadline is not None and "stop" not in fleet_opts:
                fleet_opts["stop"] = lambda: time.time() >= deadline
            # the engine takes no events= keyword; the facade opens the
            # spool so engine-level events (retirements, compactions,
            # plan-cache traffic) still stream for single-shard runs
            events_path = fleet_opts.pop("events", None)
            if events_path is None and config is not None:
                events_path = config.events
            kwargs = dict(
                starts=explicit, rng=rng, adaptive=adaptive,
                **common, **fleet_opts,
            )
            if count is not None and explicit is None:
                kwargs["num_starts"] = count
            if events_path and current_spool() is None:
                T = len(batch)
                V = count if count is not None else (
                    1 if explicit is None or explicit.ndim == 1
                    else explicit.shape[0])
                with EventSpool.open(events_path, src="parent") as spool, \
                        use_spool(spool):
                    spool.emit("run_start", tensors=T, lanes=T * V,
                               workers=1, shards=1, executor="inline",
                               ranges=[[0, T]], starts_per_tensor=V)
                    t_run = time.perf_counter()
                    result = fleet_solve(batch, **kwargs)
                    spool.emit("run_finish",
                               seconds=time.perf_counter() - t_run,
                               requeues=0, failed=0)
            else:
                result = fleet_solve(batch, **kwargs)
    seconds = time.perf_counter() - t0

    return SolveReport(
        result=result,
        solver=solver,
        seconds=seconds,
        request=request,
        extra=extra,
    )


def _solve_custom_entry(request: SolveRequest, count, tol, max_iters):
    """Route a third-party registered method through its
    :class:`~repro.solvers.registry.SolverEntry` callables.

    Batch requests use ``entry.batch`` when provided; otherwise the
    facade falls back to running ``entry.single`` per tensor and packing
    one result slot per tensor into a
    :class:`~repro.core.results.FleetResult` (reading the conventional
    ``eigenvalue`` / ``eigenvector`` / ``converged`` / ``iterations``
    attributes, NaN where absent).
    """
    from repro.solvers import get_solver

    entry = get_solver(request.method)
    config, rng = request.config, request.rng
    opts = _fold_deadline(dict(request.options), config)
    common = dict(tol=tol, max_iters=max_iters, config=config, rng=rng)
    if not request.is_batch:
        if entry.single is None:
            raise ValueError(
                f"solver {request.method!r} is batch-only; pass a "
                "SymmetricTensorBatch"
            )
        return entry.single(request.problem, **common, **opts)
    if entry.batch is not None:
        return entry.batch(request.problem, num_starts=count or 8,
                           **common, **opts)
    if entry.single is None:
        raise ValueError(f"solver {request.method!r} registered no callables")
    from repro.core.results import FleetResult

    batch = request.problem
    T, n = len(batch), batch.n
    eigenvalues = np.full((T, 1), np.nan)
    eigenvectors = np.full((T, 1, n), np.nan)
    converged = np.zeros((T, 1), dtype=bool)
    iterations = np.zeros((T, 1), dtype=np.int64)
    failed = np.zeros((T, 1), dtype=bool)
    sweeps = 0
    for t, tensor in enumerate(batch):
        r = entry.single(tensor, **common, **opts)
        eigenvalues[t, 0] = float(getattr(r, "eigenvalue", np.nan))
        vec = getattr(r, "eigenvector", None)
        if vec is not None:
            eigenvectors[t, 0] = np.asarray(vec, dtype=np.float64)
        converged[t, 0] = bool(np.all(getattr(r, "converged", False)))
        iterations[t, 0] = int(getattr(r, "iterations", 0))
        sweeps = max(sweeps, int(getattr(r, "iterations", 0)))
    return FleetResult(
        eigenvalues=eigenvalues, eigenvectors=eigenvectors,
        converged=converged, iterations=iterations, sweeps=sweeps,
        failed=failed, shifts=None, variant=request.method, tensors=batch,
    )
