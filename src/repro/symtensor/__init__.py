"""Symmetric tensor storage format (Section III of the paper).

Index-class enumeration and ranking, compressed single/batched storage, and
random/structured constructors.
"""

from repro.symtensor.indexing import (
    canonical_index,
    class_lookup,
    index_classes,
    index_from_monomial,
    index_table,
    is_valid_index,
    iter_index_classes,
    iter_monomials,
    monomial_from_index,
    multiplicity_table,
    rank_index,
    sigma_table,
    unrank_index,
    update_index,
)
from repro.symtensor.random import (
    identity_like_tensor,
    kolda_mayo_example_3x3x3,
    odeco_tensor,
    random_odeco_tensor,
    random_symmetric_batch,
    random_symmetric_tensor,
    rank_one_tensor,
    sum_of_rank_ones,
)
from repro.symtensor.ops import (
    RankOneApproximation,
    best_rank_one,
    evaluate_polynomial,
    greedy_rank_r,
    inner_product,
    polynomial_coefficients,
    symmetric_product,
)
from repro.symtensor.storage import (
    SymmetricTensor,
    SymmetricTensorBatch,
    is_symmetric_dense,
    symmetric_outer_power,
    symmetrize_dense,
)

__all__ = [
    "canonical_index",
    "class_lookup",
    "index_classes",
    "index_from_monomial",
    "index_table",
    "is_valid_index",
    "iter_index_classes",
    "iter_monomials",
    "monomial_from_index",
    "multiplicity_table",
    "rank_index",
    "sigma_table",
    "unrank_index",
    "update_index",
    "RankOneApproximation",
    "best_rank_one",
    "evaluate_polynomial",
    "greedy_rank_r",
    "inner_product",
    "polynomial_coefficients",
    "symmetric_product",
    "SymmetricTensor",
    "SymmetricTensorBatch",
    "is_symmetric_dense",
    "symmetric_outer_power",
    "symmetrize_dense",
    "identity_like_tensor",
    "kolda_mayo_example_3x3x3",
    "odeco_tensor",
    "random_odeco_tensor",
    "random_symmetric_batch",
    "random_symmetric_tensor",
    "rank_one_tensor",
    "sum_of_rank_ones",
]
