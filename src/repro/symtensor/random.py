"""Constructors for random and structured symmetric tensors.

Used by tests (random instances of every size), benchmarks (the Table III /
Figure 5 workloads), and examples (the worked tensors from the SS-HOPM
literature).
"""

from __future__ import annotations

import numpy as np

from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch, symmetric_outer_power
from repro.util.combinatorics import num_unique_entries
from repro.util.rng import make_rng, random_unit_vectors

__all__ = [
    "random_symmetric_tensor",
    "random_symmetric_batch",
    "rank_one_tensor",
    "sum_of_rank_ones",
    "odeco_tensor",
    "random_odeco_tensor",
    "identity_like_tensor",
    "kolda_mayo_example_3x3x3",
]


def random_symmetric_tensor(
    m: int,
    n: int,
    rng: int | np.random.Generator | None = None,
    scale: float = 1.0,
    dtype=np.float64,
) -> SymmetricTensor:
    """Symmetric tensor whose unique values are iid normal(0, scale)."""
    rng = make_rng(rng)
    values = rng.normal(0.0, scale, size=num_unique_entries(m, n)).astype(dtype)
    return SymmetricTensor(values, m, n)


def random_symmetric_batch(
    count: int,
    m: int,
    n: int,
    rng: int | np.random.Generator | None = None,
    scale: float = 1.0,
    dtype=np.float64,
) -> SymmetricTensorBatch:
    """Batch of ``count`` iid random symmetric tensors."""
    rng = make_rng(rng)
    values = rng.normal(0.0, scale, size=(count, num_unique_entries(m, n))).astype(dtype)
    return SymmetricTensorBatch(values, m, n)


def rank_one_tensor(x: np.ndarray, m: int, weight: float = 1.0) -> SymmetricTensor:
    """``weight * x^{(x) m}`` — a symmetric rank-one tensor."""
    t = symmetric_outer_power(np.asarray(x, dtype=np.float64), m)
    return t * weight


def sum_of_rank_ones(
    directions: np.ndarray, weights: np.ndarray | None = None, m: int = 4
) -> SymmetricTensor:
    """``sum_i w_i * d_i^{(x) m}`` for rows ``d_i`` of ``directions``.

    This is the structure of the MRI diffusion tensors: each fiber
    population contributes a rank-one term along its direction.
    """
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    count = directions.shape[0]
    if weights is None:
        weights = np.ones(count)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (count,):
        raise ValueError(f"need {count} weights, got shape {weights.shape}")
    acc = rank_one_tensor(directions[0], m, float(weights[0]))
    for i in range(1, count):
        acc = acc + rank_one_tensor(directions[i], m, float(weights[i]))
    return acc


def odeco_tensor(basis: np.ndarray, weights: np.ndarray, m: int = 4) -> SymmetricTensor:
    """Orthogonally decomposable tensor ``A = sum_i w_i u_i^{(x) m}`` with
    *orthonormal* ``u_i`` (rows of ``basis``).

    Odeco tensors have known eigenpairs: each ``(w_i, u_i)`` is an
    eigenpair (``A u_i^{m-1} = w_i u_i`` since ``u_j . u_i = 0`` for
    ``j != i``), and these "robust" eigenpairs are exactly the possible
    limits of the unshifted power iteration — making odeco tensors exact
    ground truth for eigen-solver tests.

    Raises if the rows of ``basis`` are not orthonormal to ``1e-10``.
    """
    basis = np.atleast_2d(np.asarray(basis, dtype=np.float64))
    weights = np.asarray(weights, dtype=np.float64)
    gram = basis @ basis.T
    if not np.allclose(gram, np.eye(basis.shape[0]), atol=1e-10):
        raise ValueError("odeco components must be orthonormal")
    return sum_of_rank_ones(basis, weights, m=m)


def random_odeco_tensor(
    m: int,
    n: int,
    rank: int | None = None,
    rng: int | np.random.Generator | None = None,
    weight_range: tuple[float, float] = (0.5, 2.0),
) -> tuple[SymmetricTensor, np.ndarray, np.ndarray]:
    """Random odeco tensor from a Haar-random orthonormal frame.

    Returns ``(tensor, basis, weights)`` where ``basis`` has ``rank``
    orthonormal rows (default ``rank = n``) and ``weights`` are positive
    and strictly decreasing (so the spectrum is simple and identifiable).
    """
    rng = make_rng(rng)
    rank = n if rank is None else rank
    if not 1 <= rank <= n:
        raise ValueError(f"rank must be in 1..{n}, got {rank}")
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    basis = q.T[:rank]
    lo, hi = weight_range
    weights = np.sort(rng.uniform(lo, hi, size=rank))[::-1]
    # enforce strict separation for identifiability
    weights = weights + np.linspace(0.1 * (hi - lo), 0.0, rank)
    return odeco_tensor(basis, weights, m=m), basis, weights


def identity_like_tensor(m: int, n: int) -> SymmetricTensor:
    """The symmetric tensor ``E`` with ``E x^{m-1} = ||x||^{m-2} x``: the
    symmetrization of ``I (x) I (x) ... (x) I`` for even ``m``.

    For ``m = 2`` this is the identity matrix.  For even ``m > 2`` it is the
    symmetric tensor representing the polynomial ``(x_1^2 + ... + x_n^2)^{m/2}``
    so that ``E x^m = ||x||^m``; on the unit sphere every vector is then an
    eigenvector with eigenvalue 1 — a useful degenerate test case.
    """
    if m % 2 != 0:
        raise ValueError("identity-like tensor only defined for even order m")
    # Build from the dense polynomial representation: symmetrize the m-fold
    # outer product of identity matrices.  Cheap because sizes are small.
    from repro.symtensor.storage import symmetrize_dense

    eye = np.eye(n)
    dense = eye
    for _ in range(m // 2 - 1):
        dense = np.tensordot(dense, eye, axes=0)
    dense_sym = symmetrize_dense(dense)
    return SymmetricTensor.from_dense(dense_sym, check=False)


def kolda_mayo_example_3x3x3() -> SymmetricTensor:
    """A fixed symmetric tensor in R^[3,3] (entries after the worked example
    in Kolda & Mayo's SS-HOPM paper) used as a deterministic correctness
    target for eigenpair solvers.

    Its SS-HOPM-reachable real eigenpairs (lambda > 0 representatives of the
    odd-order sign symmetry; verified to residual < 1e-7 against the dense
    reference kernels) are
    ``lambda ~= 0.8730, 0.4306, 0.0180, 0.0006``, the first three positive
    stable (local maxima of ``A x^3`` on the sphere) and the last negative
    stable.  The theoretical count of complex eigenpairs for m=3, n=3 is
    ``((m-1)^n - 1)/(m-2) = 7``.
    """
    entries = {
        (0, 0, 0): -0.1281,
        (0, 0, 1): 0.0516,
        (0, 0, 2): -0.0954,
        (0, 1, 1): -0.1958,
        (0, 1, 2): -0.1790,
        (0, 2, 2): -0.2676,
        (1, 1, 1): 0.3251,
        (1, 1, 2): 0.2513,
        (1, 2, 2): 0.1773,
        (2, 2, 2): 0.0338,
    }
    return SymmetricTensor.from_dict(entries, 3, 3)
