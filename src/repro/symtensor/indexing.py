"""Index classes of symmetric tensors (Section III-A of the paper).

A symmetric tensor ``A in R^[m,n]`` is determined by one value per *index
class* — the orbit of a tensor index under permutation.  Each class has two
canonical encodings:

* **index representation** — the unique nondecreasing ``m``-tuple of indices
  in ``{1, ..., n}`` (the paper stores this one: ``m`` integers, and usually
  ``m << n``);
* **monomial representation** — the ``n``-tuple ``[k_1, ..., k_n]`` of
  occurrence counts (``sum k_i = m``), i.e. the exponent vector of the
  monomial ``x_1^{k_1} ... x_n^{k_n}``.

Classes are ordered lexicographically: increasing in the index
representation, equivalently decreasing in the monomial representation
(Table I of the paper shows the ordering for ``m=3, n=4``).

This module provides the successor function of Figure 4 (``update_index``),
full enumeration, O(m)-space ranking/unranking within the lex order, and the
precomputed index/multiplicity tables that the GPU implementation shares
across all thread blocks (Section V-C).

Indices are **1-based** in the public tuple-level API, matching the paper;
the array-level tables are 0-based for direct NumPy indexing and say so in
their docstrings.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Sequence

import numpy as np

from repro.util.combinatorics import (
    binomial,
    factorial,
    multinomial,
    multinomial1_from_index,
    num_unique_entries,
)

__all__ = [
    "update_index",
    "iter_index_classes",
    "index_classes",
    "monomial_from_index",
    "index_from_monomial",
    "iter_monomials",
    "rank_index",
    "unrank_index",
    "canonical_index",
    "is_valid_index",
    "multiplicity_table",
    "index_table",
    "class_lookup",
    "sigma_table",
]


def is_valid_index(index: Sequence[int], n: int) -> bool:
    """True iff ``index`` is a nondecreasing tuple over ``{1, ..., n}``."""
    prev = 1
    for idx in index:
        if idx < prev or idx > n:
            return False
        prev = idx
    return True


def canonical_index(index: Sequence[int]) -> tuple[int, ...]:
    """Index representation (sorted tuple) of an arbitrary tensor index."""
    return tuple(sorted(index))


def update_index(index: list[int], n: int) -> bool:
    """Advance ``index`` (in place) to its lex successor — Figure 4.

    Finds the least significant position not equal to ``n``, increments it,
    and resets every less significant position to the new value, which is the
    smallest nondecreasing completion.  Runs in ``O(m)``.

    Returns
    -------
    bool
        ``True`` if a successor existed; ``False`` if ``index`` was already
        the last class ``[n, n, ..., n]`` (left unchanged).
    """
    m = len(index)
    j = m - 1
    while j >= 0 and index[j] == n:
        j -= 1
    if j < 0:
        return False
    index[j] += 1
    for k in range(j + 1, m):
        index[k] = index[j]
    return True


def iter_index_classes(m: int, n: int) -> Iterator[tuple[int, ...]]:
    """Yield every index class of ``R^[m,n]`` in lexicographic order.

    Exactly ``C(m+n-1, m)`` tuples, starting at ``(1, ..., 1)`` and ending at
    ``(n, ..., n)``.
    """
    if m < 1 or n < 1:
        raise ValueError(f"need m, n >= 1, got m={m}, n={n}")
    index = [1] * m
    yield tuple(index)
    while update_index(index, n):
        yield tuple(index)


def index_classes(m: int, n: int) -> list[tuple[int, ...]]:
    """All index classes of ``R^[m,n]`` in lex order, as a list."""
    return list(iter_index_classes(m, n))


def monomial_from_index(index: Sequence[int], n: int) -> tuple[int, ...]:
    """Monomial representation ``[k_1, ..., k_n]`` of an index class."""
    counts = [0] * n
    for idx in index:
        if not 1 <= idx <= n:
            raise ValueError(f"index value {idx} outside 1..{n}")
        counts[idx - 1] += 1
    return tuple(counts)


def index_from_monomial(mono: Sequence[int]) -> tuple[int, ...]:
    """Index representation from a monomial representation."""
    out: list[int] = []
    for value, count in enumerate(mono, start=1):
        if count < 0:
            raise ValueError(f"negative multiplicity in {tuple(mono)}")
        out.extend([value] * count)
    return tuple(out)


def iter_monomials(m: int, n: int) -> Iterator[tuple[int, ...]]:
    """Monomial representations in the same (lex) class order."""
    for index in iter_index_classes(m, n):
        yield monomial_from_index(index, n)


def rank_index(index: Sequence[int], n: int) -> int:
    """Zero-based position of an index class in the lex order.

    Counts nondecreasing tuples preceding ``index``: at each position ``j``
    with previous value ``p``, choosing any value in ``[p, index_j - 1]``
    leaves the remaining ``m-j-1`` slots free, contributing
    ``C(n - v + m - j - 1, m - j - 1)`` nondecreasing completions for each
    candidate ``v``.  Runs in ``O(m n)`` with exact integer arithmetic.
    """
    m = len(index)
    if not is_valid_index(index, n):
        raise ValueError(f"{tuple(index)} is not a nondecreasing index over 1..{n}")
    rank = 0
    prev = 1
    for j, idx in enumerate(index):
        remaining = m - j - 1
        for v in range(prev, idx):
            rank += binomial(n - v + remaining, remaining)
        prev = idx
    return rank


def unrank_index(rank: int, m: int, n: int) -> tuple[int, ...]:
    """Inverse of :func:`rank_index`: the class at zero-based ``rank``."""
    total = num_unique_entries(m, n)
    if not 0 <= rank < total:
        raise ValueError(f"rank {rank} outside [0, {total}) for m={m}, n={n}")
    out: list[int] = []
    prev = 1
    for j in range(m):
        remaining = m - j - 1
        v = prev
        while True:
            block = binomial(n - v + remaining, remaining)
            if rank < block:
                break
            rank -= block
            v += 1
        out.append(v)
        prev = v
    return tuple(out)


# ---------------------------------------------------------------------------
# Precomputed tables (Section V-C: shared across all thread blocks since all
# tensors have the same order and dimension).
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def index_table(m: int, n: int) -> np.ndarray:
    """All index representations as a read-only ``(U, m)`` int64 array,
    **0-based** for direct NumPy indexing (paper's ``m x U`` index array)."""
    table = np.array(index_classes(m, n), dtype=np.int64) - 1
    table.setflags(write=False)
    return table


@lru_cache(maxsize=None)
def multiplicity_table(m: int, n: int) -> np.ndarray:
    """Multinomial coefficient ``C(m; k_1..k_n)`` of every class, in class
    order — the per-entry occurrence counts stored by the GPU code."""
    table = np.array(
        [multinomial(monomial_from_index(ix, n)) for ix in iter_index_classes(m, n)],
        dtype=np.int64,
    )
    table.setflags(write=False)
    return table


@lru_cache(maxsize=None)
def sigma_table(m: int, n: int) -> np.ndarray:
    """``(U, n)`` table of the Figure-3 coefficients ``sigma(j)``.

    ``sigma_table[u, j] = C(m-1; k_1, ..., k_{j+1}-1, ..., k_n)`` when index
    ``j+1`` occurs in class ``u``, else 0 (the class does not contribute to
    output entry ``j``).  Derivable from :func:`multiplicity_table` via
    ``sigma(j) = mult * k_j / m`` (the footnote-3 identity), but computed
    exactly here.
    """
    classes = index_classes(m, n)
    table = np.zeros((len(classes), n), dtype=np.int64)
    m1fact = factorial(m - 1)
    for u, index in enumerate(classes):
        for j in set(index):
            table[u, j - 1] = multinomial1_from_index(index, j, m1fact)
    table.setflags(write=False)
    return table


@lru_cache(maxsize=None)
def class_lookup(m: int, n: int) -> dict[tuple[int, ...], int]:
    """Map from (1-based) index representation to class position."""
    return {index: u for u, index in enumerate(iter_index_classes(m, n))}
