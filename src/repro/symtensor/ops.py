"""Algebra on compressed symmetric tensors.

Section VI: "the techniques for exploiting symmetry may be extended to
other computations involving symmetric tensors."  This module provides the
extensions most useful downstream, all operating directly on the
compressed unique-value representation:

* weighted inner product and induced norm (multiplicity-weighted, matching
  the dense Frobenius inner product),
* symmetric product ``sym(A (x) B)`` of two compressed symmetric tensors,
* the gradient operator ``A -> m * A x^{m-1}`` as algebra (already in the
  kernels) and the polynomial view ``A x^m`` as a polynomial evaluator,
* best symmetric rank-1 approximation via SS-HOPM (the Kofidis-Regalia /
  De Lathauwer problem the paper cites as reference [2]/[10]), including
  the deflation-style greedy rank-R approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symtensor.indexing import (
    class_lookup,
    index_table,
    iter_index_classes,
    multiplicity_table,
)
from repro.symtensor.storage import SymmetricTensor, symmetric_outer_power
from repro.util.combinatorics import factorial, multinomial

__all__ = [
    "inner_product",
    "norm",
    "symmetric_product",
    "polynomial_coefficients",
    "evaluate_polynomial",
    "RankOneApproximation",
    "best_rank_one",
    "greedy_rank_r",
]


def inner_product(a: SymmetricTensor, b: SymmetricTensor) -> float:
    """Frobenius inner product ``<A, B> = sum over all n^m entries`` of the
    dense tensors, computed from unique values weighted by multiplicity."""
    if (a.m, a.n) != (b.m, b.n):
        raise ValueError(
            f"shape mismatch: R^[{a.m},{a.n}] vs R^[{b.m},{b.n}]"
        )
    mult = multiplicity_table(a.m, a.n).astype(np.float64)
    return float(np.sum(mult * a.values * b.values))


def norm(a: SymmetricTensor) -> float:
    """Frobenius norm (alias for :meth:`SymmetricTensor.frobenius_norm`)."""
    return a.frobenius_norm()


def symmetric_product(a: SymmetricTensor, b: SymmetricTensor) -> SymmetricTensor:
    """The symmetrized outer product ``sym(A (x) B)`` of compressed
    symmetric tensors, itself compressed, of order ``m_a + m_b``.

    Entry derivation: for an output class with index representation ``I``
    (order ``m = m_a + m_b``), the symmetrization averages ``A ⊗ B`` over
    all ``m!`` permutations; grouping permutations by which multiset of
    positions lands in the ``A`` factor gives

        sym(A⊗B)_I = (m_a! m_b! / m!) * sum_{S} A_{I_S} B_{I_{S^c}}

    where ``S`` ranges over the distinct ``m_a``-sub-multisets of ``I``
    counted with their multiset multiplicity.  Implemented by iterating,
    for each output class, over the sub-multiset split.
    """
    if a.n != b.n:
        raise ValueError(f"dimension mismatch: {a.n} vs {b.n}")
    n = a.n
    ma, mb = a.m, b.m
    m = ma + mb
    lookup_a = class_lookup(ma, n)
    lookup_b = class_lookup(mb, n)
    out = SymmetricTensor.zeros(m, n, dtype=np.result_type(a.dtype, b.dtype))
    scale = factorial(ma) * factorial(mb) / factorial(m)

    from itertools import combinations

    for u, index in enumerate(iter_index_classes(m, n)):
        # distinct m_a-sub-multisets of the multiset `index`, with counts
        seen: dict[tuple[int, ...], int] = {}
        for combo in combinations(range(m), ma):
            sub = tuple(index[i] for i in combo)
            seen[sub] = seen.get(sub, 0) + 1
        acc = 0.0
        for sub, count in seen.items():
            remaining = list(index)
            for v in sub:
                remaining.remove(v)
            acc += count * a.values[lookup_a[sub]] * b.values[lookup_b[tuple(remaining)]]
        out.values[u] = scale * acc
    return out


def polynomial_coefficients(a: SymmetricTensor) -> dict[tuple[int, ...], float]:
    """The homogeneous polynomial ``p(x) = A x^m`` as a map from exponent
    vectors (monomial representations) to coefficients: the unique value
    times its multiplicity."""
    from repro.symtensor.indexing import monomial_from_index

    mult = multiplicity_table(a.m, a.n)
    return {
        monomial_from_index(index, a.n): float(mult[u] * a.values[u])
        for u, index in enumerate(iter_index_classes(a.m, a.n))
    }


def evaluate_polynomial(coeffs: dict[tuple[int, ...], float], x: np.ndarray) -> float:
    """Evaluate a polynomial given as exponent-vector -> coefficient."""
    x = np.asarray(x, dtype=np.float64)
    total = 0.0
    for expo, c in coeffs.items():
        if len(expo) != x.shape[0]:
            raise ValueError(
                f"exponent vector {expo} does not match dimension {x.shape[0]}"
            )
        total += c * float(np.prod(x ** np.asarray(expo)))
    return total


@dataclass
class RankOneApproximation:
    """Best symmetric rank-1 approximation ``lambda * x^{(x)m}`` of a
    symmetric tensor.

    Attributes
    ----------
    weight, vector : the approximation parameters (``||vector|| = 1``).
    residual_norm : Frobenius distance ``||A - lambda x^{(x)m}||_F``.
    relative_error : residual over ``||A||_F``.
    """

    weight: float
    vector: np.ndarray
    residual_norm: float
    relative_error: float

    def tensor(self, m: int) -> SymmetricTensor:
        return symmetric_outer_power(self.vector, m) * self.weight


def best_rank_one(
    tensor: SymmetricTensor,
    num_starts: int = 64,
    tol: float = 1e-12,
    max_iter: int = 2000,
    rng=None,
) -> RankOneApproximation:
    """Best symmetric rank-1 approximation via SS-HOPM.

    The best rank-1 symmetric approximation of ``A`` is
    ``lambda* x*^{(x)m}`` where ``(lambda*, x*)`` is the eigenpair with the
    largest ``|lambda|`` (Kofidis & Regalia / De Lathauwer — the setting of
    the paper's references [2] and [10]); the squared distance is
    ``||A||_F^2 - lambda*^2``.  Both convex and concave shifted iterations
    are run so negative-lambda optima are found too.
    """
    from repro.core.multistart import multistart_sshopm
    from repro.solvers.sshopm import suggested_shift

    alpha = suggested_shift(tensor)
    best_lam, best_x = 0.0, None
    for shift in (alpha, -alpha):
        res = multistart_sshopm(
            tensor, num_starts=num_starts, alpha=shift, tol=tol,
            max_iters=max_iter, rng=rng,
        )
        lams = res.eigenvalues[0]
        conv = res.converged[0]
        if not conv.any():
            continue
        idx = int(np.argmax(np.where(conv, np.abs(lams), -np.inf)))
        if abs(lams[idx]) > abs(best_lam):
            best_lam = float(lams[idx])
            best_x = res.eigenvectors[0, idx]
    if best_x is None:
        raise RuntimeError("no SS-HOPM start converged; increase max_iter")
    approx = symmetric_outer_power(best_x, tensor.m) * best_lam
    resid = (tensor - approx).frobenius_norm()
    total = tensor.frobenius_norm()
    return RankOneApproximation(
        weight=best_lam,
        vector=best_x,
        residual_norm=resid,
        relative_error=resid / total if total > 0 else 0.0,
    )


def greedy_rank_r(
    tensor: SymmetricTensor,
    rank: int,
    num_starts: int = 64,
    tol: float = 1e-12,
    max_iter: int = 2000,
    stop_tol: float = 1e-7,
    rng=None,
) -> tuple[list[RankOneApproximation], SymmetricTensor]:
    """Greedy rank-R approximation by successive rank-1 deflation.

    Repeatedly subtracts the best rank-1 term from the residual.  (For
    tensors, unlike matrices, greedy deflation is *not* optimal in general
    — but it is exact for odeco tensors and a standard practical baseline.)
    Stops early once the residual norm falls below ``stop_tol`` relative to
    the input norm.  Returns the rank-1 terms and the final residual.
    """
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    terms: list[RankOneApproximation] = []
    residual = tensor.copy()
    floor = stop_tol * max(tensor.frobenius_norm(), 1e-300)
    for _ in range(rank):
        if residual.frobenius_norm() < floor:
            break
        term = best_rank_one(residual, num_starts=num_starts, tol=tol,
                             max_iter=max_iter, rng=rng)
        terms.append(term)
        residual = residual - term.tensor(tensor.m)
    return terms, residual
