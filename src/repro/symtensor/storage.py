"""Compressed symmetric tensor storage (Section III-A).

:class:`SymmetricTensor` stores only the ``U = C(m+n-1, m)`` unique values of
a symmetric ``A in R^[m,n]``, in lexicographic class order, with no explicit
index information — the position of a value determines its index class.
:class:`SymmetricTensorBatch` stacks ``T`` same-shaped symmetric tensors into
a ``(T, U)`` array, exactly the layout the paper ships to the GPU (tensor
data of size ``T * U``, Section V-C).

Element access uses 0-based indices like NumPy; conversion to the paper's
1-based index representations happens at the :mod:`repro.symtensor.indexing`
boundary.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Sequence

import numpy as np

from repro.symtensor.indexing import (
    class_lookup,
    index_table,
    multiplicity_table,
)
from repro.util.combinatorics import (
    factorial,
    num_total_entries,
    num_unique_entries,
)

__all__ = [
    "SymmetricTensor",
    "SymmetricTensorBatch",
    "symmetrize_dense",
    "is_symmetric_dense",
    "symmetric_outer_power",
]


def symmetrize_dense(dense: np.ndarray) -> np.ndarray:
    """Symmetric part of an arbitrary ``m``-way cube tensor: the average of
    ``dense`` over all ``m!`` axis permutations."""
    m = dense.ndim
    if m < 1:
        raise ValueError("tensor must have at least one mode")
    n = dense.shape[0]
    if any(s != n for s in dense.shape):
        raise ValueError(f"all modes must have equal dimension, got {dense.shape}")
    acc = np.zeros_like(dense, dtype=np.result_type(dense.dtype, np.float64))
    for perm in permutations(range(m)):
        acc += np.transpose(dense, perm)
    acc /= factorial(m)
    return acc.astype(dense.dtype, copy=False) if np.issubdtype(dense.dtype, np.floating) else acc


def is_symmetric_dense(dense: np.ndarray, tol: float = 1e-10) -> bool:
    """True iff ``dense`` is invariant (to ``tol``, relative to its max
    magnitude) under every axis permutation."""
    scale = float(np.max(np.abs(dense))) or 1.0
    for perm in permutations(range(dense.ndim)):
        if not np.allclose(dense, np.transpose(dense, perm), atol=tol * scale, rtol=0.0):
            return False
    return True


def symmetric_outer_power(x: np.ndarray, m: int, dtype=None) -> "SymmetricTensor":
    """Compressed rank-one symmetric tensor ``x^{(x) m}`` (the m-fold
    symmetric outer power): unique value of class ``I`` is
    ``prod_j x[I_j]``."""
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError(f"x must be a vector, got shape {x.shape}")
    n = x.shape[0]
    tab = index_table(m, n)  # (U, m), 0-based
    values = np.prod(x[tab], axis=1)
    if dtype is not None:
        values = values.astype(dtype)
    return SymmetricTensor(values, m, n)


class SymmetricTensor:
    """A symmetric tensor in ``R^[m,n]`` stored as its unique values.

    Parameters
    ----------
    values : array of shape ``(U,)`` with ``U = C(m+n-1, m)``, the unique
        entries in lexicographic class order.
    m : tensor order (number of modes).
    n : dimension of every mode.

    The ``values`` array is kept by reference (no copy) when it already has
    a floating dtype; mutate it through the ``values`` attribute if needed.
    """

    __slots__ = ("values", "m", "n")

    def __init__(self, values: np.ndarray | Sequence[float], m: int, n: int):
        values = np.asarray(values)
        expected = num_unique_entries(m, n)
        if values.shape != (expected,):
            raise ValueError(
                f"expected {expected} unique values for R^[{m},{n}] "
                f"(C(m+n-1, m) = C({m + n - 1}, {m})), got shape {values.shape}"
            )
        if not np.issubdtype(values.dtype, np.floating):
            values = values.astype(np.float64)
        self.values = values
        self.m = int(m)
        self.n = int(n)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, check: bool = True, tol: float = 1e-8
    ) -> "SymmetricTensor":
        """Compress a dense symmetric tensor.

        With ``check=True`` (default) raises ``ValueError`` if ``dense`` is
        not symmetric to within ``tol``; with ``check=False`` the entries at
        the canonical (sorted) index positions are taken as-is.
        """
        m = dense.ndim
        n = dense.shape[0]
        if any(s != n for s in dense.shape):
            raise ValueError(f"all modes must have equal dimension, got {dense.shape}")
        if check and not is_symmetric_dense(dense, tol=tol):
            raise ValueError("dense tensor is not symmetric; use symmetrize_dense first")
        tab = index_table(m, n)  # (U, m) 0-based
        values = dense[tuple(tab[:, j] for j in range(m))]
        return cls(np.array(values), m, n)

    @classmethod
    def zeros(cls, m: int, n: int, dtype=np.float64) -> "SymmetricTensor":
        return cls(np.zeros(num_unique_entries(m, n), dtype=dtype), m, n)

    @classmethod
    def from_dict(
        cls, entries: dict[tuple[int, ...], float], m: int, n: int, dtype=np.float64
    ) -> "SymmetricTensor":
        """Build from a sparse dict mapping (0-based, any-order) tensor
        indices to values; unspecified classes are zero."""
        lookup = class_lookup(m, n)
        values = np.zeros(num_unique_entries(m, n), dtype=dtype)
        for index, val in entries.items():
            if len(index) != m:
                raise ValueError(f"index {index} has wrong length for order {m}")
            key = tuple(sorted(i + 1 for i in index))
            if key not in lookup:
                raise ValueError(f"index {index} out of bounds for dimension {n}")
            values[lookup[key]] = val
        return cls(values, m, n)

    # -- conversions --------------------------------------------------------

    def to_dense(self, dtype=None) -> np.ndarray:
        """Expand to the full ``n^m``-entry dense array."""
        dtype = dtype or self.values.dtype
        dense = np.empty((self.n,) * self.m, dtype=dtype)
        tab = index_table(self.m, self.n)
        for u in range(tab.shape[0]):
            base = tuple(int(v) for v in tab[u])
            for perm in set(permutations(base)):
                dense[perm] = self.values[u]
        return dense

    def astype(self, dtype) -> "SymmetricTensor":
        return SymmetricTensor(self.values.astype(dtype), self.m, self.n)

    def copy(self) -> "SymmetricTensor":
        return SymmetricTensor(self.values.copy(), self.m, self.n)

    # -- element access (0-based, any index order) --------------------------

    def __getitem__(self, index: tuple[int, ...]) -> float:
        if np.isscalar(index):
            index = (index,)
        if len(index) != self.m:
            raise IndexError(f"need {self.m} indices, got {len(index)}")
        key = tuple(sorted(i + 1 for i in index))
        u = class_lookup(self.m, self.n).get(key)
        if u is None:
            raise IndexError(f"index {index} out of bounds for dimension {self.n}")
        return float(self.values[u])

    def __setitem__(self, index: tuple[int, ...], value: float) -> None:
        if np.isscalar(index):
            index = (index,)
        if len(index) != self.m:
            raise IndexError(f"need {self.m} indices, got {len(index)}")
        key = tuple(sorted(i + 1 for i in index))
        u = class_lookup(self.m, self.n).get(key)
        if u is None:
            raise IndexError(f"index {index} out of bounds for dimension {self.n}")
        self.values[u] = value

    # -- algebra -------------------------------------------------------------

    def __add__(self, other: "SymmetricTensor") -> "SymmetricTensor":
        self._check_same_shape(other)
        return SymmetricTensor(self.values + other.values, self.m, self.n)

    def __sub__(self, other: "SymmetricTensor") -> "SymmetricTensor":
        self._check_same_shape(other)
        return SymmetricTensor(self.values - other.values, self.m, self.n)

    def __mul__(self, scalar: float) -> "SymmetricTensor":
        return SymmetricTensor(self.values * float(scalar), self.m, self.n)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "SymmetricTensor":
        return SymmetricTensor(self.values / float(scalar), self.m, self.n)

    def __neg__(self) -> "SymmetricTensor":
        return SymmetricTensor(-self.values, self.m, self.n)

    def _check_same_shape(self, other: "SymmetricTensor") -> None:
        if not isinstance(other, SymmetricTensor):
            raise TypeError(f"expected SymmetricTensor, got {type(other).__name__}")
        if (self.m, self.n) != (other.m, other.n):
            raise ValueError(
                f"shape mismatch: R^[{self.m},{self.n}] vs R^[{other.m},{other.n}]"
            )

    def frobenius_norm(self) -> float:
        """Frobenius norm of the *dense* tensor, computed from unique values
        weighted by their class multiplicities."""
        mult = multiplicity_table(self.m, self.n).astype(self.values.dtype)
        return float(np.sqrt(np.sum(mult * self.values**2)))

    def allclose(self, other: "SymmetricTensor", rtol=1e-9, atol=1e-12) -> bool:
        self._check_same_shape(other)
        return bool(np.allclose(self.values, other.values, rtol=rtol, atol=atol))

    # -- bookkeeping ---------------------------------------------------------

    @property
    def num_unique(self) -> int:
        return self.values.shape[0]

    @property
    def num_dense(self) -> int:
        return num_total_entries(self.m, self.n)

    @property
    def compression_ratio(self) -> float:
        """Dense / compressed element count (→ ``m!`` for large ``n``)."""
        return self.num_dense / self.num_unique

    @property
    def nbytes(self) -> int:
        return self.values.nbytes

    @property
    def dtype(self):
        return self.values.dtype

    def __repr__(self) -> str:
        return (
            f"SymmetricTensor(m={self.m}, n={self.n}, "
            f"unique={self.num_unique}, dtype={self.values.dtype})"
        )


class SymmetricTensorBatch:
    """``T`` symmetric tensors of identical order/dimension, stored as a
    contiguous ``(T, U)`` array — the paper's device-side tensor layout.

    Index/multiplicity tables are shared across the batch exactly as the GPU
    implementation shares them across thread blocks.
    """

    __slots__ = ("values", "m", "n")

    def __init__(self, values: np.ndarray, m: int, n: int):
        values = np.asarray(values)
        expected = num_unique_entries(m, n)
        if values.ndim != 2 or values.shape[1] != expected:
            raise ValueError(
                f"expected shape (T, {expected}) for R^[{m},{n}] batch "
                f"(C(m+n-1, m) = C({m + n - 1}, {m}) unique values per "
                f"tensor), got {values.shape}"
            )
        if not np.issubdtype(values.dtype, np.floating):
            values = values.astype(np.float64)
        self.values = values
        self.m = int(m)
        self.n = int(n)

    @classmethod
    def from_tensors(cls, tensors: Iterable[SymmetricTensor]) -> "SymmetricTensorBatch":
        tensors = list(tensors)
        if not tensors:
            raise ValueError("cannot build a batch from zero tensors")
        m, n = tensors[0].m, tensors[0].n
        for t in tensors:
            if (t.m, t.n) != (m, n):
                raise ValueError("all tensors in a batch must share (m, n)")
        return cls(np.stack([t.values for t in tensors]), m, n)

    def __len__(self) -> int:
        return self.values.shape[0]

    def __getitem__(self, t: int) -> SymmetricTensor:
        return SymmetricTensor(self.values[t], self.m, self.n)

    def __iter__(self):
        for t in range(len(self)):
            yield self[t]

    def subset(self, count_or_indices) -> "SymmetricTensorBatch":
        """First ``k`` tensors (int argument) or an arbitrary index subset —
        used by the Figure-5 sweep over subsets of the 1024-tensor set."""
        if np.isscalar(count_or_indices):
            return SymmetricTensorBatch(
                self.values[: int(count_or_indices)], self.m, self.n
            )
        return SymmetricTensorBatch(self.values[np.asarray(count_or_indices)], self.m, self.n)

    def astype(self, dtype) -> "SymmetricTensorBatch":
        return SymmetricTensorBatch(self.values.astype(dtype), self.m, self.n)

    @property
    def num_unique(self) -> int:
        return self.values.shape[1]

    @property
    def nbytes(self) -> int:
        return self.values.nbytes

    @property
    def dtype(self):
        return self.values.dtype

    def __repr__(self) -> str:
        return (
            f"SymmetricTensorBatch(T={len(self)}, m={self.m}, n={self.n}, "
            f"dtype={self.values.dtype})"
        )
