"""Command-line interface.

Subcommands mirror the workflows in the paper and this repo's benchmarks::

    repro spectrum  --m 4 --n 3 --seed 42          # eigenpairs of a tensor
    repro fleet-solve --tensors 64 --starts 32     # whole-batch fleet engine
    repro phantom   --rows 32 --cols 32 -o p.npz   # synthesize a test set
    repro detect    p.npz                          # fiber detection + score
    repro gpu-model --tensors 1024                 # Table III-style output
    repro kernels   --m 4 --n 6                    # kernel variant timing

Also runnable as ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_spectrum(args) -> int:
    from repro.core import adaptive_sshopm, find_eigenpairs, suggested_shift
    from repro.symtensor import kolda_mayo_example_3x3x3, random_symmetric_tensor

    if args.example:
        tensor = kolda_mayo_example_3x3x3()
    else:
        tensor = random_symmetric_tensor(args.m, args.n, rng=args.seed)
    alpha = args.alpha if args.alpha is not None else suggested_shift(tensor)
    print(f"{tensor}  alpha={alpha:.4f}  starts={args.starts}")
    pairs = find_eigenpairs(
        tensor, num_starts=args.starts, alpha=alpha, rng=args.seed + 1,
        tol=args.tol, max_iters=args.max_iter,
    )
    print(f"{'lambda':>12s}  {'stability':<12s}{'basin':>7s}  {'residual':>9s}  x")
    for p in pairs:
        vec = np.array2string(p.eigenvector, precision=4, suppress_small=True)
        print(f"{p.eigenvalue:+12.6f}  {p.stability:<12s}{p.occurrences:>7d}"
              f"  {p.residual:9.2e}  {vec}")
    if args.adaptive:
        res = adaptive_sshopm(tensor, rng=args.seed + 2, tol=args.tol)
        print(f"adaptive run: lambda={res.eigenvalue:+.6f} in {res.iterations} iters")
    return 0


def _cmd_phantom(args) -> int:
    from repro.io import save_phantom
    from repro.mri import make_phantom

    try:
        phantom = make_phantom(
            rows=args.rows, cols=args.cols, order=args.order,
            num_gradients=args.gradients,
            crossing_angle_deg=args.crossing_angle,
            noise_sigma=args.noise, rng=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        save_phantom(args.output, phantom)
    except OSError as exc:
        print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
        return 2
    counts = phantom.num_fibers()
    print(f"wrote {args.output}: {phantom.num_voxels} voxels "
          f"({int((counts == 2).sum())} crossing), order {args.order}, "
          f"{args.gradients} gradients, noise {args.noise}")
    return 0


def _cmd_detect(args) -> int:
    from repro.io import load_phantom
    from repro.mri import evaluate_detection, extract_fibers_batch

    try:
        phantom = load_phantom(args.phantom)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load phantom {args.phantom}: {exc}",
              file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    fibers = extract_fibers_batch(
        phantom.tensors, num_starts=args.starts, alpha=args.alpha, rng=args.seed,
    )
    dt = time.perf_counter() - t0
    rep = evaluate_detection([f.directions for f in fibers], phantom.true_directions)
    print(f"solved {phantom.num_voxels} voxels x {args.starts} starts "
          f"in {dt:.2f}s")
    print(f"correct fiber count: {rep.correct_count_fraction:.1%}")
    print(f"mean angular error : {rep.mean_angular_error_deg:.2f} deg")
    print(f"matched/fp/missed  : {rep.matched}/{rep.false_positives}/{rep.misses}")
    return 0 if rep.correct_count_fraction > 0.5 else 1


def _cmd_gpu_model(args) -> int:
    from repro.gpu import KNOWN_DEVICES, TESLA_C2050, predict_sshopm
    from repro.parallel import predict_cpu_sshopm

    device = KNOWN_DEVICES.get(args.device, TESLA_C2050)
    print(f"device: {device.name} (peak {device.peak_gflops:.0f} GFLOPS)")
    print(f"{'config':<16s}{'GFLOPS':>10s}{'ms':>10s}{'frac peak':>11s}")
    from repro.gpu.kernelspec import sshopm_launch

    launch = sshopm_launch(args.m, args.n, num_starts=args.starts, variant="unrolled")
    flops = args.tensors * args.starts * args.iterations * launch.flops_per_thread_iter
    for variant in ("general", "unrolled"):
        for cores in (1, 8):
            p = predict_cpu_sshopm(flops, variant=variant, cores=cores)
            print(f"CPU-{cores} {variant:<9s}{p.gflops:>10.2f}"
                  f"{p.seconds * 1e3:>10.1f}{p.fraction_of_peak:>11.1%}")
        g = predict_sshopm(m=args.m, n=args.n, num_tensors=args.tensors,
                           num_starts=args.starts, iterations=args.iterations,
                           variant=variant, device=device)
        print(f"GPU   {variant:<9s}{g.gflops:>10.2f}"
              f"{g.seconds * 1e3:>10.1f}{g.fraction_of_peak:>11.1%}")
    return 0


def _cmd_kernels(args) -> int:
    from repro.kernels import available_variants, get_kernels
    from repro.symtensor import random_symmetric_tensor

    tensor = random_symmetric_tensor(args.m, args.n, rng=args.seed)
    x = np.random.default_rng(args.seed + 1).normal(size=args.n)
    print(f"kernel timing, m={args.m} n={args.n} "
          f"({tensor.num_unique} unique values), {args.reps} reps")
    baseline = None
    for name in available_variants():
        if name == "reference" and tensor.num_dense > 500_000:
            print(f"{name:<14s} skipped (dense too large)")
            continue
        try:
            pair = get_kernels(name, args.m, args.n)
        except ValueError as exc:
            print(f"{name:<14s} unavailable: {exc}")
            continue
        pair.ax_m(tensor, x)  # warm caches
        t0 = time.perf_counter()
        for _ in range(args.reps):
            pair.ax_m(tensor, x)
            pair.ax_m1(tensor, x)
        dt = (time.perf_counter() - t0) / args.reps
        if baseline is None:
            baseline = dt
        print(f"{name:<14s}{dt * 1e6:>12.1f} us {baseline / dt:>8.2f}x")
    return 0


def _cmd_basins(args) -> int:
    from repro.core import basin_map, render_basin_map, starts_needed_estimate, suggested_shift
    from repro.symtensor import kolda_mayo_example_3x3x3, random_symmetric_tensor

    if args.example:
        tensor = kolda_mayo_example_3x3x3()
    else:
        tensor = random_symmetric_tensor(args.m, 3, rng=args.seed)
    alpha = args.alpha if args.alpha is not None else suggested_shift(tensor)
    bmap = basin_map(tensor, alpha=alpha, resolution=args.resolution,
                     tol=1e-12, max_iter=args.max_iter)
    print(render_basin_map(bmap, width=args.width, height=args.height))
    print(f"\nconverged: {bmap.coverage:.1%}; basins: "
          + ", ".join(f"{p.eigenvalue:+.4f} ({f:.0%})"
                      for p, f in zip(bmap.pairs, bmap.fractions)))
    if (bmap.fractions > 0).any():
        print(f"random starts for 99% full coverage: "
              f"{starts_needed_estimate(bmap.fractions, 0.99)}")
    return 0


def _cmd_report(args) -> int:
    from repro.instrument import load_trace
    from repro.util.asciiplot import ascii_plot

    try:
        rec = load_trace(args.trace_file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load trace {args.trace_file}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json as _json

        print(_json.dumps(rec.to_dict()))
        return 0
    if rec.meta:
        print("meta: " + ", ".join(f"{k}={v}" for k, v in sorted(rec.meta.items())))
    print(rec.report())
    if not rec.telemetry:
        print("\n(no convergence telemetry in this trace)")
        return 0
    for tel in rec.telemetry:
        k = np.asarray(tel.column("k"), dtype=float)
        lam = np.asarray(tel.column("lam"), dtype=float)
        resid = np.asarray(tel.column("residual"), dtype=float)
        print(f"\n== {tel.name} ({len(tel)} records"
              + (f", stride {tel.stride}" if tel.stride > 1 else "") + ") ==")
        good = np.isfinite(lam)
        if good.sum() >= 2:
            print(ascii_plot({"lambda": (k[good], lam[good])},
                             width=args.width, xlabel="iteration", ylabel="lambda"))
        pos = np.isfinite(resid) & (resid > 0)
        if pos.sum() >= 2:
            print(ascii_plot({"residual": (k[pos], resid[pos])},
                             width=args.width, logy=True,
                             xlabel="iteration", ylabel="residual"))
        elif good.sum() < 2:
            print("(stream too short to plot)")
    return 0


def _cmd_trace_convert(args) -> int:
    from repro.instrument import load_trace
    from repro.instrument.export import convert_trace

    try:
        rec = load_trace(args.input)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load trace {args.input}: {exc}", file=sys.stderr)
        return 2
    text = convert_trace(rec, args.to)
    if args.output:
        try:
            with open(args.output, "w") as fh:
                fh.write(text)
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.output} ({args.to})")
    else:
        print(text, end="")
    return 0


def _cmd_solve(args) -> int:
    from repro.resilience import RetryPolicy, resilient_multistart
    from repro.symtensor import random_symmetric_tensor

    if args.tensor:
        from repro.io import load_tensor

        try:
            tensor = load_tensor(args.tensor)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        source = {"tensor": args.tensor}
    else:
        tensor = random_symmetric_tensor(args.m, args.n, rng=args.seed)
        source = {"m": args.m, "n": args.n, "tensor_seed": args.seed}
    if args.method != "sshopm":
        return _solve_with_method(args, tensor)
    retry = RetryPolicy(max_attempts=max(1, args.retries + 1))
    try:
        result = resilient_multistart(
            tensor,
            num_starts=args.starts,
            alpha=args.alpha,
            tol=args.tol,
            max_iters=args.max_iters,
            seed=args.seed,
            workers=args.workers,
            retry=retry,
            checkpoint=args.resume or args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume is not None,
            checkpoint_source=source,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{tensor}  alpha={args.alpha:g}  seed={args.seed}")
    print(result.summary())
    pairs = result.eigenpairs()
    if pairs:
        print(f"{'lambda':>12s}  {'stability':<12s}{'basin':>7s}  {'residual':>9s}  x")
        for p in pairs:
            vec = np.array2string(p.eigenvector, precision=4, suppress_small=True)
            print(f"{p.eigenvalue:+12.6f}  {p.stability:<12s}{p.occurrences:>7d}"
                  f"  {p.residual:9.2e}  {vec}")
    else:
        print("no converged eigenpairs (try a larger --alpha or more --starts)")
    if result.checkpoint_path:
        print(f"checkpoint: {result.checkpoint_path}")
    return 0 if not result.failed_starts or pairs else 1


def _solve_with_method(args, tensor) -> int:
    """``repro solve --method geap/qrst/auto``: route through the facade's
    registry instead of the SS-HOPM-specific resilient sweep runner."""
    import repro
    from repro.core import SolveConfig
    from repro.resilience import RetryPolicy

    if args.resume or args.checkpoint:
        print("error: --checkpoint/--resume are only supported with "
              "--method sshopm (the checkpointing sweep runner)",
              file=sys.stderr)
        return 2
    retry = RetryPolicy(max_attempts=max(1, args.retries + 1))
    try:
        report = repro.solve(
            tensor,
            starts=args.starts,
            alpha=args.alpha,
            tol=args.tol,
            max_iters=args.max_iters,
            rng=args.seed,
            workers=args.workers,
            method=args.method,
            config=SolveConfig(retry=retry),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = report.result
    print(f"{tensor}  method={report.request.method}  "
          f"solver={report.solver}  seed={args.seed}")
    pairs = result.eigenpairs(classify=True)
    if pairs and isinstance(pairs[0], list):
        pairs = pairs[0]  # (T=1, V) fleet result: take the one tensor
    converged = np.asarray(result.converged)
    print(f"converged {int(converged.sum())}/{converged.size} "
          f"in {report.seconds:.2f}s")
    if pairs:
        print(f"{'lambda':>12s}  {'stability':<12s}{'basin':>7s}  "
              f"{'residual':>9s}  x")
        for p in pairs:
            vec = np.array2string(p.eigenvector, precision=4,
                                  suppress_small=True)
            print(f"{p.eigenvalue:+12.6f}  {p.stability:<12s}"
                  f"{p.occurrences:>7d}  {p.residual:9.2e}  {vec}")
    else:
        print("no converged eigenpairs (try more --starts)")
    return 0 if pairs else 1


def _cmd_fleet_solve(args) -> int:
    import repro
    from repro.symtensor import random_symmetric_batch

    if args.batch:
        from repro.io import load_batch

        try:
            batch = load_batch(args.batch)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not args.json:
            print(f"loaded {args.batch}: {batch!r}")
    else:
        batch = random_symmetric_batch(args.tensors, args.m, args.n,
                                       rng=args.seed)
        if not args.json:
            print(f"random batch: {batch!r} (seed {args.seed})")
    try:
        options = {}
        if args.executor is not None:
            options["executor"] = args.executor
        report = repro.solve(
            batch,
            starts=args.starts,
            alpha=args.alpha,
            tol=args.tol,
            max_iters=args.max_iters,
            rng=args.seed + 1,
            adaptive=args.adaptive,
            method=args.method,
            workers=args.workers,
            variant=args.variant,
            codegen_backend=args.backend,
            compact_every=args.compact_every,
            **options,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = report.result
    if args.json:
        import json as _json

        doc = {
            "solver": report.solver,
            "seconds": report.seconds,
            "tensors": int(result.num_tensors),
            "starts": int(result.num_starts),
            "sweeps": int(result.sweeps),
            "converged": int(result.converged.sum()),
            "failed": int(result.failed.sum()),
            "stopped": bool(result.stopped),
            "variant": result.variant,
            "compactions": int(result.compactions),
            "eigenvalues": result.eigenvalues.tolist(),
            "converged_mask": result.converged.tolist(),
        }
        if report.extra is not None:
            doc["shards"] = {
                "sizes": list(report.extra.shard_sizes),
                "workers": report.extra.workers,
                "executor": report.extra.executor,
                "requeues": report.extra.requeues,
                "failed_shards": list(report.extra.failed_shards),
            }
        print(_json.dumps(doc))
    else:
        print(f"solver: {report.solver} ({report.seconds:.2f}s)")
        print(result.summary())
        if report.extra is not None:
            sizes = "/".join(str(s) for s in report.extra.shard_sizes)
            print(f"shards: {sizes} tensors over {report.extra.workers} "
                  f"{report.extra.executor} workers "
                  f"(imbalance {report.extra.imbalance():.2f})")
        if args.spectra:
            for t, pairs in enumerate(result.eigenpairs()):
                lams = ", ".join(f"{p.eigenvalue:+.5f}x{p.occurrences}"
                                 for p in pairs) or "(none converged)"
                print(f"tensor {t}: {lams}")
    if args.output:
        from repro.io import save_results

        try:
            save_results(args.output, result)
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
        if not args.json:
            print(f"wrote {args.output}")
    return 0 if result.converged.any() else 1


def _cmd_top(args) -> int:
    from repro.instrument.top import follow

    return follow(args.events_file, interval=args.interval, once=args.once,
                  color=False if args.no_color else None)


def _cmd_bench_smoke(args) -> int:
    from repro.bench import BenchTimeout, run_smoke, write_bench_file

    try:
        doc = run_smoke(reps=args.reps, timeout=args.timeout,
                        backend=args.backend)
    except BenchTimeout as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    path = write_bench_file(doc, args.output)
    for entry in doc["benchmarks"]:
        print(f"{entry['name']:28s} median {entry['median'] * 1e3:9.3f} ms"
              f"  min {entry['min'] * 1e3:9.3f} ms  ({entry['source']})")
    print(f"wrote {path}")
    return 0


def _cmd_bench_compare(args) -> int:
    from repro.bench import (
        IncomparableBenchError,
        compare_bench,
        has_regression,
        render_comparison,
    )

    try:
        rows = compare_bench(args.old, args.new, threshold=args.threshold,
                             metric=args.metric)
    except IncomparableBenchError as exc:
        # not a regression: the two files timed different configurations
        print(f"incomparable: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_comparison(rows, threshold=args.threshold, metric=args.metric))
    return 1 if has_regression(rows) else 0


def _cmd_plan_cache(args) -> int:
    from repro.kernels import diskcache

    if args.cache_command == "info":
        info = diskcache.cache_info()
        if not info["enabled"]:
            print("plan cache: disabled (REPRO_PLAN_CACHE=0)")
            return 0
        print(f"plan cache: {info['dir']}")
        print(f"schema: {info['schema']} (codegen v{info['codegen_version']})")
        if not info["entries"]:
            print("entries: none")
        else:
            print(f"entries: {len(info['entries'])}")
            for e in info["entries"]:
                state = "ok" if e["valid"] else "stale"
                eff = e.get("effective_backend") or e.get("backend") or "?"
                print(f"  {e['key']:40s} {e['bytes']:8d} B  "
                      f"[{state}] runs as {eff}")
        print(f"total: {info['bytes']} bytes")
        return 0

    if args.cache_command == "clear":
        removed = diskcache.clear_cache()
        print(f"removed {removed} file(s)")
        return 0

    # warm: build the requested plans so later processes load them from disk
    from repro.kernels.plan import get_plan

    variants = args.variant or ["vectorized"]
    backends = args.backend or ["numpy"]
    if diskcache.cache_dir() is None:
        print("warning: plan cache is disabled; warming only this process",
              file=sys.stderr)
    status = 0
    for variant in variants:
        for backend in backends:
            try:
                plan = get_plan(args.m, args.n, variant, backend)
            except (ValueError, KeyError) as exc:
                print(f"error: m={args.m} n={args.n} {variant}/{backend}: "
                      f"{exc}", file=sys.stderr)
                status = 2
                continue
            origin = "disk" if plan.meta.get("from_disk") else "built"
            print(f"m={args.m} n={args.n} {variant:12s} {backend:6s} "
                  f"-> {plan.effective_backend} ({origin})")
    return status


def _cmd_cudagen(args) -> int:
    from repro.kernels.cudagen import generate_cuda_module

    try:
        src = generate_cuda_module(args.m, args.n, args.starts)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        try:
            with open(args.output, "w") as fh:
                fh.write(src)
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.output} ({len(src.splitlines())} lines)")
    else:
        print(src)
    return 0


def _cmd_serve(args) -> int:
    import json as _json

    from repro.serve import AdmissionError, EigenServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        runners=args.runners,
        checkpoint_dir=args.checkpoint_dir,
        keep=args.keep,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        default_deadline=args.deadline,
        default_method=args.method,
        resume_dir=args.resume_dir,
    )
    try:
        server = EigenServer(config)
        host, port = server.start()
    except (OSError, ValueError, AdmissionError) as exc:
        print(f"error: cannot start server: {exc}", file=sys.stderr)
        return 2
    # machine-readable readiness line: supervisors (and the soak test)
    # parse the bound port from it, which makes --port 0 usable
    print(_json.dumps({"event": "ready", "host": host, "port": port,
                       "checkpoint_dir": str(server.ckpt_dir)}), flush=True)
    status = server.serve_forever()
    print(_json.dumps({"event": "drained", "status": status}), flush=True)
    return status


def _cmd_ckpt(args) -> int:
    import json as _json

    from repro.resilience.retention import list_checkpoints, prune_checkpoints

    if args.ckpt_command == "gc":
        try:
            pruned = prune_checkpoints(args.directory, keep=args.keep,
                                       dry_run=args.dry_run)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        kept = list_checkpoints(args.directory)
        if args.json:
            print(_json.dumps({
                "pruned": [str(p) for p in pruned],
                "kept": [str(p) for p in kept],
                "dry_run": args.dry_run,
            }))
        else:
            verb = "would prune" if args.dry_run else "pruned"
            print(f"{verb} {len(pruned)} checkpoint(s), keeping {len(kept)}")
            for p in pruned:
                print(f"  - {p}")
        return 0
    # list
    found = list_checkpoints(args.directory)
    if args.json:
        print(_json.dumps({"checkpoints": [str(p) for p in found]}))
    else:
        if not found:
            print("no checkpoints found")
        for p in found:
            print(p)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tensor eigenvalues via SS-HOPM (Ballard/Kolda/Plantenga "
        "IPDPS-W 2011 reproduction)",
    )
    # options shared by every subcommand (accepted before or after the
    # subcommand name)
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="record an instrumentation trace of the run (JSON; see "
        "repro.instrument) and print the span summary",
    )
    common.add_argument(
        "--events", metavar="OUT.jsonl", default=None,
        help="spool typed fleet events to a per-run JSONL file "
        "(repro.instrument.events); watch it live with `repro top`",
    )
    common.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=("debug", "info", "warning", "error"),
        help="enable structured logging at this level (stderr)",
    )
    common.add_argument(
        "--log-json", action="store_true", default=False,
        help="emit logs as JSON lines (one object per record) instead of "
        "text; implies --log-level info unless set",
    )
    # also accepted before the subcommand name; separate dests because the
    # subparser's own defaults would clobber these
    parser.add_argument("--trace", dest="trace_global", metavar="OUT.json",
                        default=None, help=argparse.SUPPRESS)
    parser.add_argument("--events", dest="events_global",
                        metavar="OUT.jsonl", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--log-level", dest="log_level_global", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--log-json", dest="log_json_global",
                        action="store_true", default=False,
                        help=argparse.SUPPRESS)
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name, **kw):
        kw.setdefault("parents", [common])
        return sub.add_parser(name, **kw)

    p = add_parser("spectrum", help="eigenpairs of one symmetric tensor")
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--starts", type=int, default=128)
    p.add_argument("--alpha", type=float, default=None,
                   help="shift (default: conservative provable shift)")
    p.add_argument("--tol", type=float, default=1e-12)
    p.add_argument("--max-iter", type=int, default=3000)
    p.add_argument("--example", action="store_true",
                   help="use the fixed 3x3x3 example tensor")
    p.add_argument("--adaptive", action="store_true",
                   help="also run one adaptive-shift iteration")
    p.set_defaults(func=_cmd_spectrum)

    p = add_parser("solve", help="fault-tolerant multistart sweep with "
                   "retry, checkpointing, and resume")
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--seed", type=int, default=0,
                   help="root seed for starts (and the random tensor when "
                   "no --tensor file is given)")
    p.add_argument("--tensor", metavar="FILE.npz", default=None,
                   help="solve this saved tensor instead of a random one")
    p.add_argument("--starts", type=int, default=64)
    p.add_argument("--alpha", type=float, default=0.0)
    p.add_argument("--tol", type=float, default=1e-12)
    p.add_argument("--max-iters", type=int, default=500)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--method", choices=("sshopm", "geap", "qrst", "auto"),
                   default="sshopm",
                   help="solver method (repro.solvers registry); anything "
                   "but sshopm routes through repro.solve and does not "
                   "support --checkpoint/--resume")
    p.add_argument("--retries", type=int, default=2,
                   help="retries per failed start, with shift escalation "
                   "(default 2)")
    p.add_argument("--checkpoint", metavar="CKPT.json", default=None,
                   help="write periodic checkpoints of completed starts")
    p.add_argument("--checkpoint-every", type=int, default=8, metavar="N",
                   help="checkpoint after every N completed starts")
    p.add_argument("--resume", metavar="CKPT.json", default=None,
                   help="resume an interrupted sweep from its checkpoint "
                   "(parameters must match; results are bit-for-bit "
                   "identical to an uninterrupted run)")
    p.set_defaults(func=_cmd_solve)

    p = add_parser("fleet-solve", help="solve a whole tensor batch with the "
                   "fleet engine (lane retirement + plan-cached kernels)")
    p.add_argument("--batch", metavar="FILE.npz", default=None,
                   help="solve this saved batch (see repro.io.save_batch) "
                   "instead of a random one")
    p.add_argument("--tensors", type=int, default=64,
                   help="random-batch size when no --batch file is given")
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--n", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--starts", type=int, default=32)
    p.add_argument("--alpha", type=float, default=0.0)
    p.add_argument("--tol", type=float, default=1e-10)
    p.add_argument("--max-iters", type=int, default=500)
    p.add_argument("--variant", default="vectorized",
                   help="kernel-plan variant (vectorized, unrolled, "
                   "unrolled_cse, blocked, or auto)")
    p.add_argument("--backend", default=None,
                   help="codegen backend for the kernel plan (numpy, numba, "
                   "or auto to race them; default numpy)")
    p.add_argument("--workers", type=int, default=1,
                   help="shard the tensor axis over this many workers")
    p.add_argument("--executor", choices=("thread", "process", "auto"),
                   default=None,
                   help="worker tier for --workers > 1: thread (default), "
                   "process (zero-copy shared-memory worker processes), "
                   "or auto (communication cost model picks)")
    p.add_argument("--adaptive", action="store_true",
                   help="per-lane shift escalation on oscillation")
    p.add_argument("--method", choices=("sshopm", "geap", "qrst", "auto"),
                   default="sshopm",
                   help="solver method: geap runs the fleet with "
                   "per-lane projected-Hessian shifts, qrst runs the "
                   "dense QR solver per tensor, auto picks by shape")
    p.add_argument("--compact-every", type=int, default=8, metavar="K",
                   help="sweeps between active-set compactions")
    p.add_argument("--spectra", action="store_true",
                   help="print the deduplicated spectrum per tensor")
    p.add_argument("-o", "--output", metavar="RESULTS.npz", default=None,
                   help="save the (T, V) result bundle (repro.io format)")
    p.add_argument("--json", action="store_true",
                   help="emit one machine-readable JSON document instead "
                   "of the human summary")
    p.set_defaults(func=_cmd_fleet_solve)

    p = add_parser("phantom", help="synthesize a DW-MRI phantom")
    p.add_argument("--rows", type=int, default=32)
    p.add_argument("--cols", type=int, default=32)
    p.add_argument("--order", type=int, default=4)
    p.add_argument("--gradients", type=int, default=32)
    p.add_argument("--crossing-angle", type=float, default=75.0)
    p.add_argument("--noise", type=float, default=0.02)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_phantom)

    p = add_parser("detect", help="fiber detection on a saved phantom")
    p.add_argument("phantom")
    p.add_argument("--starts", type=int, default=128)
    p.add_argument("--alpha", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_detect)

    p = add_parser("gpu-model", help="Table III-style device predictions")
    p.add_argument("--device", default="Tesla C2050 (Fermi)")
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--tensors", type=int, default=1024)
    p.add_argument("--starts", type=int, default=128)
    p.add_argument("--iterations", type=float, default=40.0)
    p.set_defaults(func=_cmd_gpu_model)

    p = add_parser("basins", help="ASCII basin-of-attraction map (n=3)")
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--alpha", type=float, default=None)
    p.add_argument("--resolution", type=int, default=400)
    p.add_argument("--max-iter", type=int, default=3000)
    p.add_argument("--width", type=int, default=72)
    p.add_argument("--height", type=int, default=22)
    p.add_argument("--example", action="store_true")
    p.set_defaults(func=_cmd_basins)

    p = add_parser("plan-cache", help="inspect, clear, or warm the "
                   "persistent on-disk kernel-plan cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    pc = cache_sub.add_parser("info", parents=[common],
                              help="list cached plan entries and sizes")
    pc.set_defaults(func=_cmd_plan_cache)
    pc = cache_sub.add_parser("clear", parents=[common],
                              help="delete every cached plan entry")
    pc.set_defaults(func=_cmd_plan_cache)
    pc = cache_sub.add_parser("warm", parents=[common],
                              help="build plans now so later processes "
                              "start from the disk cache")
    pc.add_argument("--m", type=int, default=4)
    pc.add_argument("--n", type=int, default=6)
    pc.add_argument("--variant", action="append", default=None,
                    metavar="NAME",
                    help="plan variant to warm (repeatable; default "
                    "vectorized)")
    pc.add_argument("--backend", action="append", default=None,
                    metavar="NAME",
                    help="codegen backend to warm (repeatable; default "
                    "numpy)")
    pc.set_defaults(func=_cmd_plan_cache)

    p = add_parser("cudagen", help="emit the CUDA kernel source (.cu)")
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--starts", type=int, default=128)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_cudagen)

    p = add_parser("kernels", help="time the kernel variants")
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--reps", type=int, default=200)
    p.set_defaults(func=_cmd_kernels)

    p = add_parser("report", help="summarize a saved trace (spans, gauges, "
                   "convergence curves)")
    p.add_argument("trace_file", metavar="TRACE.json")
    p.add_argument("--width", type=int, default=64,
                   help="plot width in characters")
    p.add_argument("--json", action="store_true",
                   help="emit the trace document as JSON instead of the "
                   "human report")
    p.set_defaults(func=_cmd_report)

    p = add_parser("trace", help="operate on saved trace files")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    pc = trace_sub.add_parser("convert", parents=[common],
                              help="convert a trace to another format")
    pc.add_argument("input", metavar="TRACE.json")
    pc.add_argument("--to", required=True,
                    choices=("chrome", "prometheus", "jsonl"),
                    help="chrome trace-event JSON (chrome://tracing / "
                    "Perfetto), Prometheus text exposition, or JSONL events")
    pc.add_argument("-o", "--output", default=None,
                    help="output path (default: stdout)")
    pc.set_defaults(func=_cmd_trace_convert)

    p = add_parser("top", help="live dashboard over a fleet event spool "
                   "(lane occupancy, per-worker throughput, queue depth, "
                   "steals, ETA)")
    p.add_argument("events_file", metavar="EVENTS.jsonl",
                   help="event spool written via --events / events= "
                   "(live or completed; completed runs render their final "
                   "state and exit)")
    p.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                   help="refresh interval (default 1s)")
    p.add_argument("--once", action="store_true",
                   help="render one frame and exit (CI/snapshot mode)")
    p.add_argument("--no-color", action="store_true",
                   help="disable ANSI colors even on a tty")
    p.set_defaults(func=_cmd_top)

    p = add_parser("serve", help="run the crash-tolerant eigensolver "
                   "service (bounded admission, deadlines, circuit "
                   "breaker, checkpointing SIGTERM drain; docs/serve.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8634,
                   help="listen port (0 = pick a free port; the bound "
                   "port is printed on the ready line)")
    p.add_argument("--queue-limit", type=int, default=32, metavar="N",
                   help="admission queue capacity; requests beyond it get "
                   "a structured 429 with Retry-After (default 32)")
    p.add_argument("--runners", type=int, default=2, metavar="N",
                   help="concurrent job runner threads (default 2)")
    p.add_argument("--checkpoint-dir", default="serve-ckpt", metavar="DIR",
                   help="directory for per-job chunk checkpoints and the "
                   "drain manifest (default serve-ckpt/)")
    p.add_argument("--keep", type=int, default=0, metavar="N",
                   help="retain only the N newest job checkpoints, pruning "
                   "after each completed job (0 = keep all)")
    p.add_argument("--breaker-threshold", type=int, default=3, metavar="N",
                   help="consecutive process-tier failures that trip the "
                   "circuit breaker open (default 3)")
    p.add_argument("--breaker-reset", type=float, default=30.0,
                   metavar="SECONDS",
                   help="open-state cooldown before a half-open probe "
                   "(default 30s)")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="default per-request deadline applied when a "
                   "request doesn't set deadline_seconds")
    p.add_argument("--method", choices=("sshopm", "geap", "qrst"),
                   default="sshopm",
                   help="default solver method applied when a request "
                   "doesn't set one (jobs may not use 'auto': specs must "
                   "be reproducible)")
    p.add_argument("--resume-dir", default=None, metavar="DIR",
                   help="finish the jobs recorded in DIR's drain manifest "
                   "(written by a previous SIGTERM drain) before opening "
                   "intake; completed work resumes bit-for-bit from the "
                   "chunk checkpoints")
    p.set_defaults(func=_cmd_serve)

    p = add_parser("ckpt", help="inspect and garbage-collect checkpoint "
                   "directories")
    ckpt_sub = p.add_subparsers(dest="ckpt_command", required=True)
    pc = ckpt_sub.add_parser("gc", parents=[common],
                             help="prune old checkpoints, newest-first")
    pc.add_argument("directory", metavar="DIR")
    pc.add_argument("--keep", type=int, required=True, metavar="N",
                    help="checkpoints to retain (newest by mtime)")
    pc.add_argument("--dry-run", action="store_true",
                    help="report what would be pruned without deleting")
    pc.add_argument("--json", action="store_true",
                    help="machine-readable output")
    pc.set_defaults(func=_cmd_ckpt)
    pc = ckpt_sub.add_parser("list", parents=[common],
                             help="list checkpoint files, newest first")
    pc.add_argument("directory", metavar="DIR")
    pc.add_argument("--json", action="store_true",
                    help="machine-readable output")
    pc.set_defaults(func=_cmd_ckpt)

    p = add_parser("bench-smoke", help="run the smoke benchmark subset, "
                   "write BENCH_<stamp>.json")
    p.add_argument("-o", "--output", default=None,
                   help="output path (default BENCH_<stamp>.json in cwd)")
    p.add_argument("--reps", type=int, default=3)
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-workload wall-clock budget; exceeding it "
                   "aborts with exit code 2 (hung-workload guard)")
    p.add_argument("--backend", default=None,
                   help="codegen backend tag recorded in meta.backend; "
                   "bench-compare refuses to gate across backends")
    p.set_defaults(func=_cmd_bench_smoke)

    p = add_parser("bench-compare", help="regression gate between two "
                   "BENCH_*.json files (exit 1 on regression)")
    p.add_argument("old", metavar="OLD.json")
    p.add_argument("new", metavar="NEW.json")
    p.add_argument("--threshold", type=float, default=0.2,
                   help="allowed slowdown fraction (default 0.2 = +20%%)")
    p.add_argument("--metric", choices=("median", "min"), default="median")
    p.set_defaults(func=_cmd_bench_compare)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    log_level = (getattr(args, "log_level", None)
                 or getattr(args, "log_level_global", None))
    log_json = (getattr(args, "log_json", False)
                or getattr(args, "log_json_global", False))
    if log_level or log_json:
        from repro.instrument.log import configure_logging

        configure_logging(log_level or "info", json_lines=log_json)
    trace = getattr(args, "trace", None) or getattr(args, "trace_global", None)
    events = (getattr(args, "events", None)
              or getattr(args, "events_global", None))
    if not trace and not events:
        return args.func(args)

    import contextlib

    from repro.instrument import recording
    from repro.instrument.events import (
        EventSpool,
        new_run_id,
        provenance,
        use_spool,
    )

    for label, path in (("trace", trace), ("events", events)):
        if not path:
            continue
        try:  # fail on an unwritable path now, not after the (long) run
            with open(path, "a"):
                pass
        except OSError as exc:
            print(f"error: cannot write {label} file {path}: {exc}",
                  file=sys.stderr)
            return 2

    # one run id joins the trace, the event spool, and the logs
    run_id = new_run_id()
    rec = None
    with contextlib.ExitStack() as stack:
        from repro.instrument.log import log_context

        stack.enter_context(log_context(run=run_id))
        if events:
            spool = stack.enter_context(
                EventSpool.open(events, run_id=run_id))
            stack.enter_context(use_spool(spool))
        if trace:
            meta = {"command": args.command,
                    "argv": list(argv or sys.argv[1:]),
                    "run_id": run_id, **provenance()}
            rec = stack.enter_context(recording(meta=meta))
            with rec.span(f"repro {args.command}"):
                status = args.func(args)
        else:
            status = args.func(args)
    if rec is not None:
        rec.save_trace(trace)
        print(f"\ntrace written to {trace}")
        print(rec.report())
    if events:
        print(f"events written to {events} (view: repro top {events} --once)")
    return status


if __name__ == "__main__":
    sys.exit(main())
