"""Persistence for tensor batches, phantoms, and solver results.

Everything is stored as compressed ``.npz`` with a format tag, so data
sets (e.g. a generated phantom standing in for the paper's SCI Institute
set) can be produced once and shared between the CLI, examples, and
benchmarks.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.multistart import MultistartResult
from repro.mri.phantom import Phantom
from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch

__all__ = [
    "save_tensor",
    "load_tensor",
    "save_batch",
    "load_batch",
    "save_phantom",
    "load_phantom",
    "save_results",
    "load_results",
]

_FORMAT = "repro-v1"


def _check_format(data, kind: str, path) -> None:
    tag = str(data.get("format", ""))
    stored_kind = str(data.get("kind", ""))
    if tag != _FORMAT or stored_kind != kind:
        raise ValueError(
            f"{path} is not a {_FORMAT}/{kind} file "
            f"(found format={tag!r}, kind={stored_kind!r})"
        )


def save_tensor(path, tensor: SymmetricTensor) -> None:
    """Write one compressed symmetric tensor."""
    np.savez_compressed(
        path,
        format=_FORMAT,
        kind="tensor",
        values=tensor.values,
        m=tensor.m,
        n=tensor.n,
    )


def load_tensor(path) -> SymmetricTensor:
    with np.load(path, allow_pickle=False) as data:
        _check_format(data, "tensor", path)
        return SymmetricTensor(data["values"], int(data["m"]), int(data["n"]))


def save_batch(path, batch: SymmetricTensorBatch) -> None:
    """Write a tensor batch (the paper's ``T x U`` device layout)."""
    np.savez_compressed(
        path,
        format=_FORMAT,
        kind="batch",
        values=batch.values,
        m=batch.m,
        n=batch.n,
    )


def load_batch(path) -> SymmetricTensorBatch:
    with np.load(path, allow_pickle=False) as data:
        _check_format(data, "batch", path)
        return SymmetricTensorBatch(data["values"], int(data["m"]), int(data["n"]))


def save_phantom(path, phantom: Phantom) -> None:
    """Write a phantom: tensors, acquisition, ground truth, and metadata.

    The ragged per-voxel direction lists are stored as one concatenated
    array plus offsets.
    """
    dirs = phantom.true_directions
    concat = np.concatenate(dirs, axis=0) if dirs else np.zeros((0, 3))
    offsets = np.cumsum([0] + [d.shape[0] for d in dirs])
    np.savez_compressed(
        path,
        format=_FORMAT,
        kind="phantom",
        values=phantom.tensors.values,
        m=phantom.tensors.m,
        n=phantom.tensors.n,
        gradients=phantom.gradients,
        adc=phantom.adc,
        rows=phantom.rows,
        cols=phantom.cols,
        dirs_concat=concat,
        dirs_offsets=offsets,
        meta=json.dumps(phantom.meta),
    )


def load_phantom(path) -> Phantom:
    with np.load(path, allow_pickle=False) as data:
        _check_format(data, "phantom", path)
        tensors = SymmetricTensorBatch(data["values"], int(data["m"]), int(data["n"]))
        offsets = data["dirs_offsets"]
        concat = data["dirs_concat"]
        dirs = [
            concat[offsets[i] : offsets[i + 1]].copy()
            for i in range(len(offsets) - 1)
        ]
        return Phantom(
            tensors=tensors,
            true_directions=dirs,
            gradients=data["gradients"],
            adc=data["adc"],
            rows=int(data["rows"]),
            cols=int(data["cols"]),
            meta=json.loads(str(data["meta"])),
        )


def save_results(path, result: MultistartResult) -> None:
    """Write a multistart solve result (eigenvalues/vectors per pair)."""
    np.savez_compressed(
        path,
        format=_FORMAT,
        kind="results",
        eigenvalues=result.eigenvalues,
        eigenvectors=result.eigenvectors,
        converged=result.converged,
        iterations=result.iterations,
        total_sweeps=result.total_sweeps,
    )


def load_results(path) -> MultistartResult:
    with np.load(path, allow_pickle=False) as data:
        _check_format(data, "results", path)
        return MultistartResult(
            eigenvalues=data["eigenvalues"],
            eigenvectors=data["eigenvectors"],
            converged=data["converged"],
            iterations=data["iterations"],
            total_sweeps=int(data["total_sweeps"]),
        )
