"""Persistence for tensor batches, phantoms, and solver results.

Everything is stored as compressed ``.npz`` with a format tag, so data
sets (e.g. a generated phantom standing in for the paper's SCI Institute
set) can be produced once and shared between the CLI, examples, and
benchmarks.

Robustness contract (see ``docs/resilience.md``):

* every ``save_*`` is **atomic** — the payload is written to a temp file
  in the destination directory, fsynced, then renamed over the target,
  so a crash mid-save leaves either the old file or the new one, never a
  truncated hybrid;
* every ``load_*`` raises :class:`ValueError` with the offending path on
  a truncated/corrupted archive, a wrong format/kind tag, a payload
  whose unique-entry count disagrees with ``C(m+n-1, m)``, or (for
  tensor inputs, not solver results) non-finite entries.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import zipfile

import numpy as np

from repro.core.multistart import MultistartResult
from repro.mri.phantom import Phantom
from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch

__all__ = [
    "save_tensor",
    "load_tensor",
    "save_batch",
    "load_batch",
    "save_phantom",
    "load_phantom",
    "save_results",
    "load_results",
]

_FORMAT = "repro-v1"


def _atomic_savez(path, **arrays) -> None:
    """``np.savez_compressed`` through a same-directory temp file + rename,
    so readers never observe a partially written archive."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        # np.savez appends .npz to names without it; pre-empt that so the
        # rename target and the written file agree
        path = path.with_name(path.name + ".npz")
    fd, tmp = tempfile.mkstemp(dir=path.parent or ".", prefix=f".{path.name}.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _open_npz(path):
    """``np.load`` with truncation/corruption mapped to ``ValueError``."""
    try:
        return np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        # np.load reports non-archive bytes as a pickle-related ValueError;
        # fold that into the same corrupted-file diagnosis
        if isinstance(exc, FileNotFoundError):
            raise
        raise ValueError(
            f"{path} is not a readable .npz archive (truncated or "
            f"corrupted?): {exc}"
        ) from exc


def _check_format(data, kind: str, path) -> None:
    try:
        tag = str(data["format"]) if "format" in data else ""
        stored_kind = str(data["kind"]) if "kind" in data else ""
    except (zipfile.BadZipFile, EOFError) as exc:
        raise ValueError(
            f"{path} is truncated or corrupted: {exc}"
        ) from exc
    if tag != _FORMAT or stored_kind != kind:
        raise ValueError(
            f"{path} is not a {_FORMAT}/{kind} file "
            f"(found format={tag!r}, kind={stored_kind!r})"
        )


def _read(data, key, path):
    """One array out of the archive, with truncated-member errors and a
    missing key both reported as a clear ValueError."""
    try:
        return data[key]
    except KeyError:
        raise ValueError(f"{path} is missing the {key!r} array") from None
    except (zipfile.BadZipFile, EOFError, OSError) as exc:
        raise ValueError(
            f"{path}: the {key!r} array is truncated or corrupted: {exc}"
        ) from exc


def _build_tensor(cls, values, m, n, path):
    """Construct, turning shape/count mismatches into path-tagged errors
    and rejecting non-finite entries (a corrupted or garbage input)."""
    try:
        tensor = cls(values, m, n)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    if not np.all(np.isfinite(tensor.values)):
        bad = int(np.count_nonzero(~np.isfinite(np.asarray(tensor.values))))
        raise ValueError(
            f"{path}: tensor payload contains {bad} non-finite "
            f"(NaN/Inf) entries"
        )
    return tensor


def save_tensor(path, tensor: SymmetricTensor) -> None:
    """Write one compressed symmetric tensor (atomically)."""
    _atomic_savez(
        path,
        format=_FORMAT,
        kind="tensor",
        values=tensor.values,
        m=tensor.m,
        n=tensor.n,
    )


def load_tensor(path) -> SymmetricTensor:
    with _open_npz(path) as data:
        _check_format(data, "tensor", path)
        return _build_tensor(
            SymmetricTensor,
            _read(data, "values", path),
            int(_read(data, "m", path)),
            int(_read(data, "n", path)),
            path,
        )


def save_batch(path, batch: SymmetricTensorBatch) -> None:
    """Write a tensor batch (the paper's ``T x U`` device layout)."""
    _atomic_savez(
        path,
        format=_FORMAT,
        kind="batch",
        values=batch.values,
        m=batch.m,
        n=batch.n,
    )


def load_batch(path) -> SymmetricTensorBatch:
    with _open_npz(path) as data:
        _check_format(data, "batch", path)
        return _build_tensor(
            SymmetricTensorBatch,
            _read(data, "values", path),
            int(_read(data, "m", path)),
            int(_read(data, "n", path)),
            path,
        )


def save_phantom(path, phantom: Phantom) -> None:
    """Write a phantom: tensors, acquisition, ground truth, and metadata.

    The ragged per-voxel direction lists are stored as one concatenated
    array plus offsets.
    """
    dirs = phantom.true_directions
    concat = np.concatenate(dirs, axis=0) if dirs else np.zeros((0, 3))
    offsets = np.cumsum([0] + [d.shape[0] for d in dirs])
    _atomic_savez(
        path,
        format=_FORMAT,
        kind="phantom",
        values=phantom.tensors.values,
        m=phantom.tensors.m,
        n=phantom.tensors.n,
        gradients=phantom.gradients,
        adc=phantom.adc,
        rows=phantom.rows,
        cols=phantom.cols,
        dirs_concat=concat,
        dirs_offsets=offsets,
        meta=json.dumps(phantom.meta),
    )


def load_phantom(path) -> Phantom:
    with _open_npz(path) as data:
        _check_format(data, "phantom", path)
        tensors = _build_tensor(
            SymmetricTensorBatch,
            _read(data, "values", path),
            int(_read(data, "m", path)),
            int(_read(data, "n", path)),
            path,
        )
        offsets = _read(data, "dirs_offsets", path)
        concat = _read(data, "dirs_concat", path)
        dirs = [
            concat[offsets[i] : offsets[i + 1]].copy()
            for i in range(len(offsets) - 1)
        ]
        return Phantom(
            tensors=tensors,
            true_directions=dirs,
            gradients=_read(data, "gradients", path),
            adc=_read(data, "adc", path),
            rows=int(_read(data, "rows", path)),
            cols=int(_read(data, "cols", path)),
            meta=json.loads(str(_read(data, "meta", path))),
        )


def save_results(path, result: MultistartResult) -> None:
    """Write a multistart solve result (eigenvalues/vectors per pair).

    The ``failed`` lane mask is stored when present; files written before
    the mask existed load back with ``failed=None``.
    """
    arrays = dict(
        format=_FORMAT,
        kind="results",
        eigenvalues=result.eigenvalues,
        eigenvectors=result.eigenvectors,
        converged=result.converged,
        iterations=result.iterations,
        total_sweeps=result.sweeps,  # stored key kept stable across the rename
    )
    if result.failed is not None:
        arrays["failed"] = result.failed
    _atomic_savez(path, **arrays)


def load_results(path) -> MultistartResult:
    # NaN eigenvalues are legitimate here (failed lanes are part of the
    # record), so results skip the non-finite rejection tensors get
    with _open_npz(path) as data:
        _check_format(data, "results", path)
        return MultistartResult(
            eigenvalues=_read(data, "eigenvalues", path),
            eigenvectors=_read(data, "eigenvectors", path),
            converged=_read(data, "converged", path),
            iterations=_read(data, "iterations", path),
            sweeps=int(_read(data, "total_sweeps", path)),
            failed=data["failed"] if "failed" in data else None,
        )
