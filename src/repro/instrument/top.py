"""``repro top`` — a live terminal dashboard over a fleet event spool.

Pure stdlib + ANSI: :func:`aggregate` folds the typed event stream
(:mod:`repro.instrument.events`) into a :class:`FleetTopView`,
:func:`render` draws it as a fixed-layout text screen, and
:func:`follow` re-reads + redraws on an interval until the run's
``run_finish`` event lands (or forever, for a hung run, until ^C).

The same code path serves three modes:

* **live** — ``repro top events.jsonl`` while a fleet runs elsewhere;
* **snapshot** — ``--once`` renders the current state and exits
  (CI-friendly: no cursor tricks, plain text);
* **replay** — pointing at a completed run's file renders its final
  state and exits immediately (``run_finish`` is present).

Everything shown is derived from the spool alone, so the dashboard works
on any machine that can read the file — no IPC with the fleet.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

from repro.instrument.events import read_events, validate_event

__all__ = ["FleetTopView", "WorkerRow", "aggregate", "follow", "render"]

_CLEAR = "\x1b[2J\x1b[H"


@dataclass
class WorkerRow:
    """Per-source (``w0``/``t1``/``parent``) rollup of shard activity."""

    src: str
    pid: int | None = None
    started: int = 0
    finished: int = 0
    steals: int = 0
    seconds: float = 0.0
    lanes: int = 0
    sweeps: int = 0
    exited: bool = False
    current_shard: int | None = None

    def lanes_per_second(self) -> float:
        return self.lanes / self.seconds if self.seconds > 0 else 0.0


@dataclass
class FleetTopView:
    """Everything :func:`render` needs, folded out of one event pass."""

    run_id: str = "?"
    host: str = "?"
    version: str = "?"
    executor: str = "?"
    workers_expected: int = 0
    tensors: int = 0
    lanes_total: int = 0
    shards_total: int = 0
    t_first: float = 0.0
    t_last: float = 0.0
    started: int = 0           # shard_start events (claims, incl. retries)
    finished: int = 0          # distinct shards finished
    writeoffs: int = 0
    requeues: int = 0
    steals: int = 0
    guard_trips: int = 0
    lanes_converged: int = 0
    lanes_failed: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    dropped: int = 0           # decimation casualties
    lines: int = 0
    invalid: int = 0           # lines failing schema validation
    run_finished: bool = False
    run_seconds: float = 0.0
    workers: dict = field(default_factory=dict)   # src -> WorkerRow
    shard_state: dict = field(default_factory=dict)  # sid -> state str
    shard_lanes: dict = field(default_factory=dict)  # sid -> lane count

    def queue_depth(self) -> int:
        """Shards currently waiting for a worker."""
        queued = sum(1 for s in self.shard_state.values() if s == "queued")
        return queued

    def in_flight(self) -> int:
        return sum(1 for s in self.shard_state.values() if s == "running")

    def lanes_active(self) -> int:
        retired = self.lanes_converged + self.lanes_failed
        return max(0, self.lanes_total - retired)

    def eta_seconds(self) -> float | None:
        """Remaining shards x mean shard seconds / live workers."""
        if self.run_finished or not self.shards_total:
            return None
        remaining = sum(1 for s in self.shard_state.values()
                        if s in ("queued", "running"))
        if remaining == 0 or self.finished == 0:
            return None
        done_seconds = sum(r.seconds for r in self.workers.values())
        mean = done_seconds / self.finished
        live = sum(1 for r in self.workers.values()
                   if not r.exited and r.src != "parent") or 1
        return remaining * mean / live


def aggregate(records: list[dict]) -> FleetTopView:
    """Fold an event list (file order) into a :class:`FleetTopView`.

    Unknown event types and schema-invalid lines are counted in
    ``invalid`` and skipped — a newer writer must not crash an older
    dashboard.
    """
    view = FleetTopView()
    starts_per_tensor = 0
    for rec in records:
        try:
            validate_event(rec)
        except ValueError:
            view.invalid += 1
            continue
        view.lines += 1
        t = float(rec["t"])
        if not view.t_first:
            view.t_first = t
        view.t_last = max(view.t_last, t)
        src = rec["src"]
        ev = rec["ev"]
        row = view.workers.get(src)
        if row is None:
            row = view.workers[src] = WorkerRow(src=src)
        if ev == "header":
            view.run_id = rec["run"]
            view.host = rec["host"]
            view.version = rec["version"]
        elif ev == "run_start":
            view.executor = rec["executor"]
            view.workers_expected = rec["workers"]
            view.tensors = rec["tensors"]
            view.lanes_total = rec["lanes"]
            view.shards_total = rec["shards"]
            if view.tensors:
                starts_per_tensor = view.lanes_total // view.tensors
            for sid, (lo, hi) in enumerate(rec.get("ranges", [])):
                view.shard_state[sid] = "queued"
                view.shard_lanes[sid] = (hi - lo) * starts_per_tensor
            for sid in range(view.shards_total):
                view.shard_state.setdefault(sid, "queued")
        elif ev == "run_finish":
            view.run_finished = True
            view.run_seconds = rec["seconds"]
        elif ev == "worker_start":
            row.pid = rec["pid"]
        elif ev == "worker_exit":
            row.exited = True
            row.current_shard = None
        elif ev == "shard_start":
            sid = rec["shard"]
            view.started += 1
            row.started += 1
            row.current_shard = sid
            view.shard_state[sid] = "running"
            view.shard_lanes.setdefault(
                sid, (rec["hi"] - rec["lo"]) * starts_per_tensor)
        elif ev == "shard_finish":
            sid = rec["shard"]
            if view.shard_state.get(sid) != "done":
                view.finished += 1
            view.shard_state[sid] = "done"
            row.finished += 1
            row.seconds += rec["seconds"]
            row.sweeps += rec["sweeps"]
            row.lanes += view.shard_lanes.get(sid, 0)
            if row.current_shard == sid:
                row.current_shard = None
        elif ev == "steal":
            view.steals += 1
            row.steals += 1
        elif ev == "requeue":
            view.requeues += 1
            view.shard_state[rec["shard"]] = "queued"
        elif ev == "writeoff":
            view.writeoffs += 1
            view.shard_state[rec["shard"]] = "failed"
        elif ev == "retire":
            view.lanes_converged += rec["converged"]
            view.lanes_failed += rec["failed"]
        elif ev == "guard_trip":
            view.guard_trips += 1
        elif ev == "plan_cache":
            if rec["outcome"] == "hit":
                view.plan_hits += 1
            else:
                view.plan_misses += 1
        elif ev == "decimated":
            view.dropped += rec["dropped"]
        # "compact" carries no dashboard state beyond retire's counters
    return view


def _bar(frac: float, width: int = 40) -> str:
    frac = min(1.0, max(0.0, frac))
    filled = round(frac * width)
    return "#" * filled + "." * (width - filled)


def _mmss(seconds: float) -> str:
    seconds = max(0, int(seconds))
    return f"{seconds // 60:02d}:{seconds % 60:02d}"


def render(view: FleetTopView, *, color: bool = False) -> str:
    """Draw one dashboard frame as plain text (ANSI color optional)."""

    def c(code: str, s: str) -> str:
        return f"\x1b[{code}m{s}\x1b[0m" if color else s

    state = (c("32", "FINISHED") if view.run_finished
             else c("33", "RUNNING"))
    elapsed = (view.run_seconds if view.run_finished
               else view.t_last - view.t_first)
    lines = [
        f"repro top — run {c('1', view.run_id)} on {view.host} "
        f"(v{view.version})  [{state} {_mmss(elapsed)}]",
        f"executor {view.executor} · {view.workers_expected} workers · "
        f"{view.shards_total} shards · {view.tensors} tensors · "
        f"{view.lanes_total} lanes",
        "",
    ]
    if view.lanes_total:
        active = view.lanes_active()
        occupancy = active / view.lanes_total
        lines.append(
            f"lanes    [{_bar(occupancy)}] {active}/{view.lanes_total} "
            f"active · {view.lanes_converged} converged · "
            f"{view.lanes_failed} failed")
    lines.append(
        f"shards   done {view.finished}/{view.shards_total} · "
        f"running {view.in_flight()} · queued {view.queue_depth()} · "
        f"requeues {view.requeues} · writeoffs {view.writeoffs} · "
        f"steals {view.steals}")
    eta = view.eta_seconds()
    if eta is not None:
        lines.append(f"eta      ~{_mmss(eta)}")
    lines.append("")
    lines.append("  src      pid      shards  steals  lanes/s  busy-s  state")
    workers = [r for src, r in sorted(view.workers.items())
               if r.started or r.finished or r.pid is not None]
    for row in workers:
        if row.exited:
            st = "exited"
        elif row.current_shard is not None:
            st = f"running shard {row.current_shard}"
        else:
            st = "idle"
        lines.append(
            f"  {row.src:<8} {row.pid or '-':<8} {row.finished:<7} "
            f"{row.steals:<7} {row.lanes_per_second():<8.1f} "
            f"{row.seconds:<7.2f} {st}")
    if not workers:
        lines.append("  (no worker activity yet)")
    lines.append("")
    tail = (f"events   {view.lines} lines · {view.dropped} dropped "
            f"(decimation) · plan cache {view.plan_hits} hit / "
            f"{view.plan_misses} miss")
    if view.guard_trips:
        tail += f" · {c('31', f'{view.guard_trips} guard trips')}"
    if view.invalid:
        tail += f" · {view.invalid} invalid lines"
    lines.append(tail)
    return "\n".join(lines)


def follow(path, *, interval: float = 1.0, once: bool = False,
           stream=None, color: bool | None = None,
           max_frames: int | None = None) -> int:
    """Tail ``path`` and redraw until the run finishes.

    ``once`` renders a single frame (no screen clearing) — the CI /
    snapshot mode; it exits 0 if the run finished and 1 if the file
    shows a run still (or forever) in flight, so a pipeline can gate on
    completion.  A completed run (``run_finish`` in the file) renders
    its final state and returns immediately.  ``max_frames`` bounds the
    loop for tests.  Returns a process exit code (2: unreadable file).
    """
    stream = stream or sys.stdout
    if color is None:
        color = bool(getattr(stream, "isatty", lambda: False)())
    frames = 0
    while True:
        try:
            records = read_events(path)
        except OSError as exc:
            print(f"repro top: cannot read {path}: {exc}", file=stream)
            return 2
        view = aggregate(records)
        frame = render(view, color=color)
        if once:
            print(frame, file=stream)
            return 0 if view.run_finished else 1
        print(_CLEAR + frame, file=stream, flush=True)
        frames += 1
        if view.run_finished:
            return 0
        if max_frames is not None and frames >= max_frames:
            return 0
        time.sleep(interval)
