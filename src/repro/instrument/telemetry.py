"""Bounded per-iteration convergence telemetry for the SS-HOPM solvers.

Kolda & Mayo characterize SS-HOPM by its per-iteration ``lambda_k``
trajectories (monotone for a sufficient shift) and the paper's MRI results
hinge on how fast those trajectories flatten.  ``lambda_history`` already
stores the raw sequence; this module records the richer per-iteration
tuple — ``(k, lambda, residual, shift, step_norm, active)`` — in a
**bounded** stream safe to leave attached to results and traces no matter
how long a run gets.

Boundedness is by stride decimation: the stream records every iteration
until ``maxlen`` records are held, then drops every other record and
doubles its stride, so memory stays O(maxlen) while coverage always spans
the whole run (early iterations at fine resolution lost last).  The final
iterate can be force-appended so the end state is always present.

Streams serialize to plain dicts (schema ``repro-telemetry/1``); a
:class:`~repro.instrument.recorder.Recorder` carries them inside the
``repro-trace/1`` JSON (optional ``telemetry`` key), which is how
``repro report`` renders convergence curves from a saved trace.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["ConvergenceTelemetry", "telemetry_enabled"]

TELEMETRY_SCHEMA = "repro-telemetry/1"

#: columns of one record, in serialization order
COLUMNS = ("k", "lam", "residual", "shift", "step_norm", "active")


class ConvergenceTelemetry:
    """One solver run's bounded per-iteration stream.

    Parameters
    ----------
    name : stream label (``"sshopm"``, ``"adaptive_sshopm"``,
        ``"multistart_sshopm"``); namespaced on absorb like span trees.
    maxlen : record cap; reaching it halves resolution (stride doubles).
    meta : free-form context (tensor shape, start counts, ...).
    """

    __slots__ = ("name", "maxlen", "meta", "stride", "_rows")

    def __init__(self, name: str, maxlen: int = 512,
                 meta: dict[str, Any] | None = None):
        if maxlen < 8:
            raise ValueError(f"maxlen must be >= 8, got {maxlen}")
        self.name = name
        self.maxlen = int(maxlen)
        self.meta = dict(meta or {})
        self.stride = 1
        self._rows: list[tuple[float, ...]] = []

    def __len__(self) -> int:
        return len(self._rows)

    def append(
        self,
        k: int,
        lam: float,
        residual: float = math.nan,
        shift: float = math.nan,
        step_norm: float = math.nan,
        active: int = 1,
        force: bool = False,
    ) -> None:
        """Record iteration ``k`` (skipped when off-stride unless
        ``force`` — use ``force=True`` for the final iterate)."""
        if not force and k % self.stride != 0:
            return
        if len(self._rows) >= self.maxlen:
            self._decimate()
            if not force and k % self.stride != 0:
                return
        self._rows.append(
            (int(k), float(lam), float(residual), float(shift),
             float(step_norm), int(active))
        )

    def _decimate(self) -> None:
        """Halve resolution: keep records on the doubled stride (forced
        off-stride records — final iterates — are kept too)."""
        self.stride *= 2
        self._rows = [
            row for i, row in enumerate(self._rows)
            if row[0] % self.stride == 0 or i == len(self._rows) - 1
        ]

    # -- access ----------------------------------------------------------

    def column(self, name: str) -> list[float]:
        """One column across all records, e.g. ``column("lam")``."""
        idx = COLUMNS.index(name)
        return [row[idx] for row in self._rows]

    def arrays(self) -> dict[str, Any]:
        """All columns as float64 numpy arrays keyed by column name."""
        import numpy as np

        return {
            name: np.asarray(self.column(name), dtype=np.float64)
            for name in COLUMNS
        }

    @property
    def records(self) -> list[dict[str, float]]:
        return [dict(zip(COLUMNS, row)) for row in self._rows]

    def renamed(self, name: str) -> "ConvergenceTelemetry":
        """A copy under a new stream name (used when a recorder absorbs a
        worker's streams under a namespace)."""
        clone = ConvergenceTelemetry(name, maxlen=self.maxlen, meta=self.meta)
        clone.stride = self.stride
        clone._rows = list(self._rows)
        return clone

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": TELEMETRY_SCHEMA,
            "name": self.name,
            "maxlen": self.maxlen,
            "stride": self.stride,
            "meta": dict(self.meta),
            "columns": list(COLUMNS),
            "rows": [list(row) for row in self._rows],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConvergenceTelemetry":
        if data.get("schema", TELEMETRY_SCHEMA) != TELEMETRY_SCHEMA:
            raise ValueError(
                f"unsupported telemetry schema {data.get('schema')!r}"
            )
        if list(data.get("columns", COLUMNS)) != list(COLUMNS):
            raise ValueError(
                f"unsupported telemetry columns {data.get('columns')!r}"
            )
        stream = cls(data["name"], maxlen=int(data.get("maxlen", 512)),
                     meta=data.get("meta"))
        stream.stride = int(data.get("stride", 1))
        stream._rows = [
            (int(r[0]), float(r[1]), float(r[2]), float(r[3]), float(r[4]),
             int(r[5]))
            for r in data.get("rows", [])
        ]
        return stream

    def __repr__(self) -> str:
        return (
            f"ConvergenceTelemetry({self.name!r}, records={len(self._rows)}, "
            f"stride={self.stride})"
        )


def telemetry_enabled(telemetry: bool | None, recorder) -> bool:
    """Shared gating rule of the solvers: an explicit ``telemetry=`` wins;
    ``None`` means "on exactly when a recorder is active" — keeping the
    disabled path free of per-iteration work."""
    if telemetry is None:
        return recorder is not None
    return bool(telemetry)
