"""Structured tracing/metrics for the whole repo (see
:mod:`repro.instrument.recorder` for the design).

Quick start
-----------
>>> from repro.instrument import recording
>>> from repro.core import find_eigenpairs
>>> from repro.symtensor import random_symmetric_tensor
>>> with recording() as rec:
...     _ = find_eigenpairs(random_symmetric_tensor(4, 3, rng=0), num_starts=16, rng=1)
>>> rec.total("flops") > 0
True

The CLI exposes the same machinery as a global flag::

    repro detect phantom.npz --starts 128 --trace out.json
"""

from repro.instrument.events import (
    EVENTS_SCHEMA,
    EventSpool,
    current_spool,
    emit,
    new_run_id,
    read_events,
    use_spool,
    validate_event,
)
from repro.instrument.export import (
    chrome_trace,
    convert_trace,
    jsonl_events,
    prometheus_text,
)
from repro.instrument.log import (
    JSONLogFormatter,
    configure_logging,
    get_logger,
    log_context,
)
from repro.instrument.kernels import instrumented_pair, kernel_cost_model
from repro.instrument.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    default_registry,
    get_registry,
    use_registry,
)
from repro.instrument.recorder import (
    Recorder,
    RecorderFlopCounter,
    SpanNode,
    count,
    current_recorder,
    gauge,
    load_trace,
    recording,
    span,
)
from repro.instrument.telemetry import ConvergenceTelemetry

__all__ = [
    "EVENTS_SCHEMA",
    "ConvergenceTelemetry",
    "Counter",
    "EventSpool",
    "Gauge",
    "Histogram",
    "JSONLogFormatter",
    "MetricsRegistry",
    "P2Quantile",
    "Recorder",
    "RecorderFlopCounter",
    "SpanNode",
    "chrome_trace",
    "configure_logging",
    "convert_trace",
    "count",
    "current_recorder",
    "current_spool",
    "default_registry",
    "emit",
    "gauge",
    "get_logger",
    "get_registry",
    "instrumented_pair",
    "jsonl_events",
    "kernel_cost_model",
    "load_trace",
    "log_context",
    "new_run_id",
    "prometheus_text",
    "read_events",
    "recording",
    "span",
    "use_registry",
    "use_spool",
    "validate_event",
]
