"""Standard-format exporters for traces and metrics.

Three output formats, all derived from the ``repro-trace/1`` JSON
(:meth:`Recorder.to_dict`) and/or a ``repro-metrics/1`` snapshot
(:meth:`MetricsRegistry.snapshot`):

* **Chrome trace-event JSON** (:func:`chrome_trace`) — loadable in
  Perfetto / ``chrome://tracing``.  ``repro-trace/1`` stores an
  *aggregated* span tree (no per-entry timestamps), so the exporter
  synthesizes a timeline: each node becomes one complete (``"X"``) event
  whose duration is its accumulated seconds, children laid out
  sequentially inside their parent.  Absorbed worker subtrees
  (``worker0``, ``worker1``, ... from the parallel executor) are placed on
  their own threads (``tid``) starting at the parent's start, so the
  parallel structure renders as overlapping tracks — which is what
  actually happened.
* **Prometheus text exposition** (:func:`prometheus_text`) — counters,
  gauges, and cumulative-``le`` histograms from a metrics snapshot, plus
  per-span time/call/counter series derived from a trace
  (``repro_trace_span_seconds_total{path="..."}`` etc.).
* **JSONL event logs** (:func:`jsonl_events`) — one self-describing JSON
  object per line (schema ``repro-events/1``): a header, then span /
  gauge / telemetry / metric events.  Greppable, ``jq``-able, and
  streamable into any log pipeline.

:func:`convert_trace` is the single entry point the CLI uses
(``repro trace convert run.json --to chrome -o run.chrome.json``).
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterator

__all__ = [
    "EXPORT_FORMATS",
    "chrome_trace",
    "convert_trace",
    "jsonl_events",
    "prometheus_text",
]

EXPORT_FORMATS = ("chrome", "prometheus", "jsonl")

_WORKER_PREFIX = "worker"


def _as_trace_dict(trace) -> dict:
    """Accept a Recorder or an already-exported trace dict."""
    return trace.to_dict() if hasattr(trace, "to_dict") else dict(trace)


def _as_metrics_snapshot(metrics) -> dict | None:
    if metrics is None:
        return None
    if hasattr(metrics, "snapshot"):
        return metrics.snapshot()
    return dict(metrics)


# -- Chrome trace events ---------------------------------------------------


def _is_worker_node(name: str) -> bool:
    return name.startswith(_WORKER_PREFIX) and name[len(_WORKER_PREFIX):].isdigit()


def _emit_span_events(node: dict, start_us: float, pid: int, tid: int,
                      events: list[dict], next_tid: list[int]) -> None:
    dur_us = float(node.get("seconds", 0.0)) * 1e6
    args: dict[str, Any] = {"count": node.get("count", 0)}
    args.update(node.get("counters", {}))
    events.append({
        "name": node["name"],
        "ph": "X",
        "ts": round(start_us, 3),
        "dur": round(dur_us, 3),
        "pid": pid,
        "tid": tid,
        "cat": "span",
        "args": args,
    })
    cursor = start_us
    for child in node.get("children", []):
        if _is_worker_node(child["name"]):
            # absorbed worker subtree: own thread, overlapping the parent
            wtid = next_tid[0]
            next_tid[0] += 1
            _emit_span_events(child, start_us, pid, wtid, events, next_tid)
        else:
            _emit_span_events(child, cursor, pid, tid, events, next_tid)
            cursor += float(child.get("seconds", 0.0)) * 1e6


def chrome_trace(trace) -> dict:
    """Chrome trace-event JSON (object form) from a ``repro-trace/1`` dict
    or a live Recorder."""
    data = _as_trace_dict(trace)
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "repro " + str(data.get("meta", {}).get("command", "run"))}},
    ]
    next_tid = [1]
    cursor = 0.0
    for child in data.get("root", {}).get("children", []):
        if _is_worker_node(child["name"]):
            # worker subtree absorbed at top level: own overlapping track
            wtid = next_tid[0]
            next_tid[0] += 1
            _emit_span_events(child, cursor, 0, wtid, events, next_tid)
        else:
            _emit_span_events(child, cursor, 0, 0, events, next_tid)
            cursor += float(child.get("seconds", 0.0)) * 1e6
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": data.get("schema"),
            "meta": data.get("meta", {}),
            "gauges": data.get("gauges", {}),
        },
    }


# -- Prometheus text exposition -------------------------------------------


def _prom_escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_prom_escape(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _prom_number(v: float) -> str:
    v = float(v)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    return repr(v) if v != int(v) else str(int(v))


def _walk_paths(node: dict, prefix: str = "") -> Iterator[tuple[str, dict]]:
    path = f"{prefix}/{node['name']}" if prefix else node["name"]
    yield path, node
    for child in node.get("children", []):
        yield from _walk_paths(child, path)


def prometheus_text(metrics=None, trace=None) -> str:
    """Prometheus text exposition (format version 0.0.4).

    ``metrics`` — a MetricsRegistry or ``repro-metrics/1`` snapshot;
    ``trace`` — a Recorder or ``repro-trace/1`` dict, rendered as derived
    ``repro_trace_*`` series.  Either may be omitted.
    """
    lines: list[str] = []
    snap = _as_metrics_snapshot(metrics)
    if snap is not None:
        if snap.get("schema", "repro-metrics/1") != "repro-metrics/1":
            raise ValueError(f"unsupported metrics schema {snap.get('schema')!r}")
        for metric in snap.get("metrics", []):
            name, kind = metric["name"], metric["type"]
            if metric.get("help"):
                lines.append(f"# HELP {name} {_prom_escape(metric['help'])}")
            lines.append(f"# TYPE {name} {kind}")
            for series in metric.get("series", []):
                labels = series.get("labels", {})
                if kind in ("counter", "gauge"):
                    lines.append(
                        f"{name}{_prom_labels(labels)} "
                        f"{_prom_number(series['value'])}"
                    )
                elif kind == "histogram":
                    cum = 0
                    bounds = list(series["bounds"]) + [math.inf]
                    for bound, count in zip(bounds, series["bucket_counts"]):
                        cum += int(count)
                        le = "+Inf" if math.isinf(bound) else _prom_number(bound)
                        lines.append(
                            f"{name}_bucket"
                            f"{_prom_labels({**labels, 'le': le})} {cum}"
                        )
                    lines.append(
                        f"{name}_sum{_prom_labels(labels)} "
                        f"{_prom_number(series['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_prom_labels(labels)} {series['count']}"
                    )
    if trace is not None:
        data = _as_trace_dict(trace)
        spans = [
            (path, node)
            for path, node in _walk_paths(data.get("root", {"name": "root"}))
            if path != "root"
        ]
        counter_totals: dict[str, float] = {}
        for _, node in spans:
            for key, value in node.get("counters", {}).items():
                counter_totals[key] = counter_totals.get(key, 0) + value
        lines.append("# TYPE repro_trace_span_seconds_total counter")
        for path, node in spans:
            p = path.removeprefix("root/")
            lines.append(
                f"repro_trace_span_seconds_total{_prom_labels({'path': p})} "
                f"{_prom_number(node.get('seconds', 0.0))}"
            )
        lines.append("# TYPE repro_trace_span_calls_total counter")
        for path, node in spans:
            p = path.removeprefix("root/")
            lines.append(
                f"repro_trace_span_calls_total{_prom_labels({'path': p})} "
                f"{node.get('count', 0)}"
            )
        if counter_totals:
            lines.append("# TYPE repro_trace_counter_total counter")
            for key in sorted(counter_totals):
                lines.append(
                    f"repro_trace_counter_total{_prom_labels({'counter': key})} "
                    f"{_prom_number(counter_totals[key])}"
                )
        numeric_gauges = {
            k: v for k, v in data.get("gauges", {}).items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        if numeric_gauges:
            lines.append("# TYPE repro_trace_gauge gauge")
            for key in sorted(numeric_gauges):
                lines.append(
                    f"repro_trace_gauge{_prom_labels({'gauge': key})} "
                    f"{_prom_number(numeric_gauges[key])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


# -- JSONL event logs ------------------------------------------------------


def jsonl_events(trace=None, metrics=None) -> list[str]:
    """One JSON object per line (schema ``repro-events/1``): header first,
    then span, gauge, telemetry, and metric events."""
    records: list[dict] = []
    header: dict[str, Any] = {"event": "header", "schema": "repro-events/1"}
    data = None
    if trace is not None:
        data = _as_trace_dict(trace)
        header["trace_schema"] = data.get("schema")
        header["meta"] = data.get("meta", {})
    records.append(header)
    if data is not None:
        for path, node in _walk_paths(data.get("root", {"name": "root"})):
            if path == "root":
                continue
            child_seconds = sum(
                c.get("seconds", 0.0) for c in node.get("children", [])
            )
            records.append({
                "event": "span",
                "path": path.removeprefix("root/"),
                "name": node["name"],
                "count": node.get("count", 0),
                "seconds": node.get("seconds", 0.0),
                "self_seconds": node.get("seconds", 0.0) - child_seconds,
                "counters": node.get("counters", {}),
            })
        for key, value in data.get("gauges", {}).items():
            records.append({"event": "gauge", "key": key, "value": value})
        for stream in data.get("telemetry", []):
            for row in stream.get("rows", []):
                records.append({
                    "event": "telemetry",
                    "stream": stream.get("name"),
                    **dict(zip(stream.get("columns", []), row)),
                })
    snap = _as_metrics_snapshot(metrics)
    if snap is not None:
        for metric in snap.get("metrics", []):
            for series in metric.get("series", []):
                records.append({
                    "event": "metric",
                    "name": metric["name"],
                    "type": metric["type"],
                    "labels": series.get("labels", {}),
                    **{k: v for k, v in series.items() if k != "labels"},
                })
    return [json.dumps(r, default=str) for r in records]


# -- single entry point ----------------------------------------------------


def convert_trace(trace, to: str, metrics=None) -> str:
    """Render ``trace`` (Recorder or ``repro-trace/1`` dict) in the named
    format — ``"chrome"``, ``"prometheus"``, or ``"jsonl"`` — as text."""
    if to == "chrome":
        return json.dumps(chrome_trace(trace), indent=2) + "\n"
    if to == "prometheus":
        return prometheus_text(metrics=metrics, trace=trace)
    if to == "jsonl":
        return "\n".join(jsonl_events(trace=trace, metrics=metrics)) + "\n"
    raise ValueError(
        f"unknown export format {to!r}; expected one of {EXPORT_FORMATS}"
    )
