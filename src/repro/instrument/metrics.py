"""Process-local metrics: Counter / Gauge / Histogram with labels.

The span recorder (:mod:`repro.instrument.recorder`) answers "where did
*this run's* time go"; this module answers the complementary question —
"what has this *process* done so far" — with the three standard metric
kinds:

* :class:`Counter` — monotone totals (runs started, pairs converged).
* :class:`Gauge` — last-written values (current batch size, active workers).
* :class:`Histogram` — streaming distributions (iterations to convergence,
  per-run wall seconds) with log-spaced buckets, exact count/sum/min/max,
  and **streaming percentiles**: each tracked quantile is estimated online
  by the P² algorithm of Jain & Chlamtac (no samples stored), falling back
  to bucket interpolation after a merge (P² states do not merge; bucket
  counts do, exactly).

Metrics live in a :class:`MetricsRegistry`.  A process-wide default
registry backs the module helpers; :func:`use_registry` installs a
thread-local override so the parallel executor can give every worker its
own registry and fold them back losslessly with :meth:`MetricsRegistry.merge`
(counters add, gauges last-write, histogram buckets add) — the same
snapshot/merge discipline :meth:`Recorder.absorb` uses for spans.

Snapshots (:meth:`MetricsRegistry.snapshot`, schema ``repro-metrics/1``)
are plain JSON-able dicts, embeddable in traces and ``BENCH_*.json``
documents, and renderable as Prometheus text exposition by
:mod:`repro.instrument.export`.

Solvers emit a small fixed set of metrics once per run (never inside the
iteration loop), so the always-on cost is a few dict operations per solve
— budgeted alongside the disabled-tracing overhead in
``benchmarks/bench_instrument_overhead.py``.
"""

from __future__ import annotations

import bisect
import math
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "default_buckets",
    "default_registry",
    "get_registry",
    "observe_breaker_state",
    "observe_codegen_compile",
    "observe_fleet_compaction",
    "observe_fleet_retired",
    "observe_ipc_payload",
    "observe_plan_cache",
    "observe_plan_disk_cache",
    "observe_queue_wait",
    "observe_serve_degraded",
    "observe_serve_job",
    "observe_serve_queue_depth",
    "observe_serve_rejected",
    "observe_serve_request",
    "observe_shm_attach",
    "observe_shm_publish",
    "observe_shm_unlink",
    "observe_solver_run",
    "use_registry",
]

METRICS_SCHEMA = "repro-metrics/1"

_DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


def default_buckets() -> tuple[float, ...]:
    """Log-spaced upper bounds (1-2-5 per decade, 1e-6 .. 1e6).

    Wide enough for seconds, iteration counts, and flop rates alike; the
    implicit final bucket is ``+inf``.
    """
    bounds = []
    for decade in range(-6, 7):
        for mantissa in (1.0, 2.0, 5.0):
            bounds.append(mantissa * 10.0**decade)
    return tuple(bounds)


class P2Quantile:
    """Streaming quantile estimation — the P² algorithm (Jain & Chlamtac,
    CACM 1985): five markers track the quantile with O(1) memory and no
    stored samples.  Exact until five observations, then a piecewise-
    parabolic estimate."""

    __slots__ = ("q", "_heights", "_pos", "_desired", "_incr", "_n")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._incr = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._n = 0

    def observe(self, x: float) -> None:
        x = float(x)
        self._n += 1
        h = self._heights
        if self._n <= 5:
            bisect.insort(h, x)
            return
        # locate the cell containing x, clamping the extreme markers
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._incr[i]
        # adjust the three interior markers toward their desired positions
        for i in (1, 2, 3):
            d = self._desired[i] - self._pos[i]
            if (d >= 1.0 and self._pos[i + 1] - self._pos[i] > 1.0) or (
                d <= -1.0 and self._pos[i - 1] - self._pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # parabolic estimate escaped the bracket: go linear
                    j = i + int(step)
                    h[i] += step * (h[j] - h[i]) / (self._pos[j] - self._pos[i])
                self._pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._pos
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    @property
    def count(self) -> int:
        return self._n

    @property
    def value(self) -> float:
        """Current estimate (exact order statistic until 5 observations)."""
        if self._n == 0:
            return math.nan
        if self._n <= 5:
            # exact quantile of the sorted prefix (nearest-rank)
            idx = min(int(self.q * self._n), self._n - 1)
            return self._heights[idx]
        return self._heights[2]


def _label_key(labelnames: tuple[str, ...], labels: dict) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Common machinery: a named family of label-keyed series."""

    kind = "untyped"

    def __init__(self, name: str, description: str = "",
                 labelnames: Sequence[str] = ()):
        self.name = name
        self.description = description
        self.labelnames = tuple(labelnames)
        self._series: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _new_series(self):
        raise NotImplementedError

    def labels(self, **labels):
        """The series for one label-value combination (created on first
        use).  Metrics without labels proxy directly on the family."""
        key = _label_key(self.labelnames, labels)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.setdefault(key, self._new_series())
        return series

    @property
    def _default(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                f"use .labels(...)"
            )
        return self.labels()

    def series_items(self) -> Iterator[tuple[dict, Any]]:
        """``(labels_dict, series)`` pairs in insertion order."""
        for key, series in list(self._series.items()):
            yield dict(zip(self.labelnames, key)), series

    def _snapshot_series(self, series) -> dict:
        raise NotImplementedError

    def _merge_series(self, series, data: dict) -> None:
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.description,
            "labelnames": list(self.labelnames),
            "series": [
                {"labels": labels, **self._snapshot_series(series)}
                for labels, series in self.series_items()
            ],
        }


class _CounterSeries:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Counter(_Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def _new_series(self):
        return _CounterSeries()

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    @property
    def value(self) -> float:
        return self._default.value

    def _snapshot_series(self, series) -> dict:
        return {"value": series.value}

    def _merge_series(self, series, data: dict) -> None:
        series.value += float(data["value"])


class _GaugeSeries:
    __slots__ = ("value",)

    def __init__(self):
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value = (0.0 if math.isnan(self.value) else self.value) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Gauge(_Metric):
    """Last-written value (can move either way)."""

    kind = "gauge"

    def _new_series(self):
        return _GaugeSeries()

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    @property
    def value(self) -> float:
        return self._default.value

    def _snapshot_series(self, series) -> dict:
        return {"value": series.value}

    def _merge_series(self, series, data: dict) -> None:
        series.value = float(data["value"])  # last write wins


class _HistogramSeries:
    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max",
                 "_p2", "_p2_valid")

    def __init__(self, bounds: tuple[float, ...],
                 quantiles: tuple[float, ...] = _DEFAULT_QUANTILES):
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._p2 = {q: P2Quantile(q) for q in quantiles}
        self._p2_valid = True

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        if self._p2_valid:
            for est in self._p2.values():
                est.observe(value)

    def observe_many(self, values) -> None:
        import numpy as np

        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        self.count += int(arr.size)
        self.sum += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))
        idx = np.searchsorted(self.bounds, arr, side="left")
        for i, c in zip(*np.unique(idx, return_counts=True)):
            self.bucket_counts[int(i)] += int(c)
        if self._p2_valid:
            for est in self._p2.values():
                for v in arr:
                    est.observe(float(v))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Streaming quantile estimate.

        Uses the live P² marker for a tracked quantile; otherwise (or after
        a merge invalidated the markers) interpolates linearly inside the
        bucket containing the target rank, clamped to the observed
        [min, max] range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        if self._p2_valid and q in self._p2:
            return self._p2[q].value
        target = q * self.count
        cum = 0
        for i, c in enumerate(self.bucket_counts):
            if c == 0:
                continue
            if cum + c >= target:
                lo = self.bounds[i - 1] if i > 0 else self.min
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (target - cum) / c
                est = lo + frac * (hi - lo)
                return min(max(est, self.min), self.max)
            cum += c
        return self.max

    def merge(self, other: "_HistogramSeries") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if other.count:
            self._p2_valid = False  # P² states don't merge; buckets do


class Histogram(_Metric):
    """Streaming distribution: buckets + count/sum/min/max + P² quantiles."""

    kind = "histogram"

    def __init__(self, name: str, description: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] | None = None):
        super().__init__(name, description, labelnames)
        bounds = tuple(float(b) for b in (buckets or default_buckets()))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds

    def _new_series(self):
        return _HistogramSeries(self.bounds)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def observe_many(self, values) -> None:
        self._default.observe_many(values)

    def percentile(self, q: float) -> float:
        return self._default.percentile(q)

    @property
    def count(self) -> int:
        return self._default.count

    @property
    def sum(self) -> float:
        return self._default.sum

    def _snapshot_series(self, series) -> dict:
        return {
            "count": series.count,
            "sum": series.sum,
            "min": series.min if series.count else None,
            "max": series.max if series.count else None,
            "bounds": list(series.bounds),
            "bucket_counts": list(series.bucket_counts),
            "percentiles": {
                str(q): series.percentile(q) for q in _DEFAULT_QUANTILES
            } if series.count else {},
        }

    def _merge_series(self, series, data: dict) -> None:
        other = _HistogramSeries(tuple(data["bounds"]))
        other.bucket_counts = [int(c) for c in data["bucket_counts"]]
        other.count = int(data["count"])
        other.sum = float(data["sum"])
        other.min = float(data["min"]) if data.get("min") is not None else math.inf
        other.max = float(data["max"]) if data.get("max") is not None else -math.inf
        series.merge(other)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create home for a process's (or worker's) metrics.

    ``counter`` / ``gauge`` / ``histogram`` return the existing family when
    the name is already registered (the declared kind and label names must
    match — a mismatch is a bug, reported as ``ValueError``).
    """

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name, description, labelnames, **kw):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, description, labelnames, **kw)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        if tuple(labelnames) != metric.labelnames:
            raise ValueError(
                f"metric {name!r} registered with labels {metric.labelnames}, "
                f"requested {tuple(labelnames)}"
            )
        return metric

    def counter(self, name: str, description: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, description, labelnames)

    def gauge(self, name: str, description: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, description, labelnames)

    def histogram(self, name: str, description: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] | None = None) -> Histogram:
        return self._get_or_create(Histogram, name, description, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def collect(self) -> list[_Metric]:
        return list(self._metrics.values())

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-able dump of every series (schema ``repro-metrics/1``)."""
        return {
            "schema": METRICS_SCHEMA,
            "metrics": [m.snapshot() for m in self.collect()],
        }

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold another registry (or a snapshot of one) into this one:
        counters and histogram buckets add exactly; gauges last-write."""
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        if snap.get("schema", METRICS_SCHEMA) != METRICS_SCHEMA:
            raise ValueError(
                f"unsupported metrics schema {snap.get('schema')!r}"
            )
        for mdata in snap.get("metrics", []):
            cls = _KINDS.get(mdata.get("type"))
            if cls is None:
                raise ValueError(f"unknown metric type {mdata.get('type')!r}")
            kw = {}
            if cls is Histogram and mdata.get("series"):
                kw["buckets"] = mdata["series"][0]["bounds"]
            metric = self._get_or_create(
                cls, mdata["name"], mdata.get("help", ""),
                tuple(mdata.get("labelnames", ())), **kw,
            )
            for sdata in mdata.get("series", []):
                series = metric.labels(**sdata.get("labels", {}))
                metric._merge_series(series, sdata)


# -- default registry and thread-local override ---------------------------

_DEFAULT_REGISTRY = MetricsRegistry()
_TLS = threading.local()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (ignoring any thread-local override)."""
    return _DEFAULT_REGISTRY


def get_registry() -> MetricsRegistry:
    """The active registry on this thread: the :func:`use_registry`
    override when one is installed, else the process default."""
    return getattr(_TLS, "current", None) or _DEFAULT_REGISTRY


def observe_solver_run(solver: str, seconds: float, iterations,
                       converged_pairs: int, total_pairs: int) -> None:
    """One solver run's metrics, emitted onto the active registry.

    Called exactly once per solve (never inside the iteration loop);
    ``iterations`` may be a scalar or the multistart per-pair array.
    """
    reg = get_registry()
    reg.counter(
        "repro_solver_runs_total", "Solver invocations", ("solver",),
    ).labels(solver=solver).inc()
    reg.counter(
        "repro_solver_pairs_total",
        "(tensor, start) pairs attempted", ("solver",),
    ).labels(solver=solver).inc(total_pairs)
    reg.counter(
        "repro_solver_pairs_converged_total",
        "(tensor, start) pairs that converged", ("solver",),
    ).labels(solver=solver).inc(converged_pairs)
    reg.histogram(
        "repro_solver_seconds", "Wall seconds per solver run", ("solver",),
    ).labels(solver=solver).observe(seconds)
    hist = reg.histogram(
        "repro_solver_iterations",
        "Iterations until each pair froze", ("solver",),
    ).labels(solver=solver)
    if hasattr(iterations, "ravel"):
        hist.observe_many(iterations)
    else:
        hist.observe(iterations)


def observe_plan_cache(event: str) -> None:
    """One kernel-plan cache event (``"hit"`` / ``"miss"`` / ``"evict"``)
    on the active registry (see :mod:`repro.kernels.plan`)."""
    get_registry().counter(
        "repro_plan_cache_events_total",
        "Kernel-plan cache lookups by outcome", ("event",),
    ).labels(event=event).inc()


def observe_plan_disk_cache(event: str) -> None:
    """One persistent plan-cache event (``"hit"`` / ``"miss"`` /
    ``"store"`` / ``"corrupt"`` / ``"schema_mismatch"``) on the active
    registry (see :mod:`repro.kernels.diskcache`)."""
    get_registry().counter(
        "repro_plan_disk_cache_events_total",
        "Persistent kernel-plan cache events by outcome", ("event",),
    ).labels(event=event).inc()


def observe_codegen_compile(backend: str, seconds: float) -> None:
    """Wall seconds one codegen backend spent generating + compiling a
    kernel (see :mod:`repro.kernels.codegen`); recorded only for fresh
    builds, so warm cache loads keep the histogram honest."""
    get_registry().histogram(
        "repro_codegen_compile_seconds",
        "Kernel generation + compilation seconds by backend", ("backend",),
    ).labels(backend=backend).observe(seconds)


def observe_fleet_compaction(active_lanes: int, total_lanes: int) -> None:
    """One fleet active-set compaction: bump the compaction counter and
    refresh the lane-occupancy gauge (active / total lanes)."""
    reg = get_registry()
    reg.counter(
        "repro_fleet_compactions_total",
        "Fleet-engine active-set compactions",
    ).inc()
    reg.gauge(
        "repro_fleet_lane_occupancy",
        "Fraction of fleet lanes still active after the last compaction",
    ).set(active_lanes / total_lanes if total_lanes else 0.0)


def observe_shm_publish(role: str, nbytes: int) -> None:
    """One shared-memory segment published (created + filled) by the
    zero-copy fleet store (see :mod:`repro.parallel.shm`).  The byte
    counter is what the process-fleet benchmark checks against the
    communication model: tensor payload shows up here exactly once, never
    in the per-shard pipe traffic."""
    reg = get_registry()
    reg.counter(
        "repro_shm_bytes_published_total",
        "Bytes published into shared-memory segments", ("role",),
    ).labels(role=role).inc(nbytes)
    reg.counter(
        "repro_shm_segments_total",
        "Shared-memory segments created", ("role",),
    ).labels(role=role).inc()


def observe_shm_attach(role: str, nbytes: int) -> None:
    """One shared-memory segment attached (mapped read-only or writable)
    by a fleet worker; bytes count the mapped view, not copied data."""
    get_registry().counter(
        "repro_shm_bytes_attached_total",
        "Bytes mapped from existing shared-memory segments", ("role",),
    ).labels(role=role).inc(nbytes)


def observe_shm_unlink(role: str) -> None:
    """One shared-memory segment unlinked (its backing file removed)."""
    get_registry().counter(
        "repro_shm_segments_unlinked_total",
        "Shared-memory segments unlinked", ("role",),
    ).labels(role=role).inc()


def observe_queue_wait(seconds: float) -> None:
    """Seconds one fleet worker spent idle between finishing a shard and
    receiving its next shard descriptor from the work queue."""
    get_registry().histogram(
        "repro_fleet_queue_wait_seconds",
        "Worker idle seconds between shard descriptors",
    ).observe(seconds)


def observe_ipc_payload(direction: str, nbytes: int) -> None:
    """Pickled bytes that actually crossed a pipe in the process-fleet
    tier (``direction``: ``"descriptor"`` out, ``"meta"`` back).  Under
    the zero-copy store this stays O(result metadata) per shard — the
    benchmark asserts it never scales with the tensor payload."""
    get_registry().counter(
        "repro_fleet_ipc_payload_bytes_total",
        "Bytes serialized across process-fleet pipes", ("direction",),
    ).labels(direction=direction).inc(nbytes)


def observe_fleet_retired(reason: str, count: int) -> None:
    """Count fleet lanes retired for ``reason`` (``"converged"`` /
    ``"failed"``) on the active registry."""
    if count:
        get_registry().counter(
            "repro_fleet_lanes_retired_total",
            "Fleet lanes retired from the active set", ("reason",),
        ).labels(reason=reason).inc(count)


def observe_serve_request(endpoint: str) -> None:
    """One HTTP request hitting a ``repro serve`` endpoint (labelled by
    normalized endpoint — ``/jobs/<id>`` collapses to ``/jobs``)."""
    get_registry().counter(
        "repro_serve_requests_total",
        "HTTP requests received by repro serve", ("endpoint",),
    ).labels(endpoint=endpoint).inc()


def observe_serve_rejected(reason: str) -> None:
    """One solve request rejected at admission (``"queue_full"``,
    ``"draining"``, ``"bad_request"``) — the overload-path counter the
    healthz ready probe and the soak test key off."""
    get_registry().counter(
        "repro_serve_rejected_total",
        "Solve requests rejected at admission", ("reason",),
    ).labels(reason=reason).inc()


def observe_serve_queue_depth(depth: int) -> None:
    """Current admission-queue depth (queued, not yet running)."""
    get_registry().gauge(
        "repro_serve_queue_depth",
        "Solve requests waiting in the admission queue",
    ).set(depth)


def observe_serve_job(status: str, seconds: float) -> None:
    """One serve job leaving the runner (``status``: ``"done"`` /
    ``"failed"`` / ``"interrupted"`` / ``"deadline"``)."""
    reg = get_registry()
    reg.counter(
        "repro_serve_jobs_total",
        "Serve jobs finished, by terminal status", ("status",),
    ).labels(status=status).inc()
    reg.histogram(
        "repro_serve_request_seconds",
        "End-to-end serve job latency (queue wait + solve)",
    ).observe(seconds)


def observe_serve_degraded() -> None:
    """One job forced off the process tier by an open circuit breaker."""
    get_registry().counter(
        "repro_serve_degraded_total",
        "Jobs degraded to the thread tier by the circuit breaker",
    ).inc()


def observe_breaker_state(state: str) -> None:
    """Circuit-breaker state as a gauge (0 closed, 1 half-open, 2 open) —
    a gauge, not a counter, so dashboards can alert on level."""
    get_registry().gauge(
        "repro_serve_breaker_state",
        "Process-tier circuit breaker state (0=closed,1=half-open,2=open)",
    ).set({"closed": 0, "half-open": 1, "open": 2}.get(state, 2))


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Install ``registry`` (or a fresh one) as this thread's active
    registry for the block — how the parallel executor isolates workers
    before merging their snapshots back::

        with use_registry() as reg:
            multistart_sshopm(batch, ...)
        default_registry().merge(reg)
    """
    reg = registry if registry is not None else MetricsRegistry()
    prev = getattr(_TLS, "current", None)
    _TLS.current = reg
    try:
        yield reg
    finally:
        _TLS.current = prev
