"""Structured tracing and metrics: the repo-wide observability substrate.

The paper's results *are* measurements — Tables I-III and Figure 5 report
flop counts and throughput of the same kernels this repo implements — and
every performance PR since needs a uniform answer to "where did the
time/flops/bytes go".  This module provides it:

* :class:`Recorder` — a tree of named spans.  Entering the same span name
  under the same parent *aggregates* (count += 1, seconds += dt), so a
  500-iteration solver produces one ``iteration`` node with ``count=500``,
  not 500 nodes.  Spans carry counters (``flops``, ``intops``, ``loads``,
  ``stores``, ``bytes``, or anything else) charged at the innermost open
  span; the recorder also holds run-level gauges (batch sizes, variant
  names) and free-form metadata.
* a *thread-local current recorder*: library code calls the module-level
  :func:`span` / :func:`count` / :func:`gauge` helpers, which are no-ops
  when no recorder is active — instrumentation stays in the hot paths at
  (measured, see ``benchmarks/bench_instrument_overhead.py``) negligible
  cost until someone turns it on with :meth:`Recorder.activate` or
  :func:`recording`.
* a bridge to the legacy flop accounting: :meth:`Recorder.flop_counter`
  returns a :class:`~repro.util.flopcount.FlopCounter` subclass that
  charges the recorder *and* (optionally) mirrors into a caller-supplied
  counter, so the new traces and the old ``counter=`` plumbing always see
  the same stream of charges and therefore agree exactly.
* export — :meth:`Recorder.report` (ASCII table), :meth:`Recorder.to_dict`
  / :meth:`Recorder.save_trace` (JSON) with a lossless round-trip via
  :meth:`Recorder.from_dict` / :func:`load_trace`.

Multi-worker runs (``repro.parallel``) give each worker its own recorder
and fold them back with :meth:`Recorder.absorb`, which namespaces the
worker's spans and gauges under a child node.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.util.flopcount import FlopCounter

__all__ = [
    "SpanNode",
    "Recorder",
    "RecorderFlopCounter",
    "current_recorder",
    "recording",
    "span",
    "count",
    "gauge",
    "load_trace",
]

TRACE_SCHEMA = "repro-trace/1"


class SpanNode:
    """One node of the span tree: aggregated timing, call count, counters.

    Attributes
    ----------
    name : span name (unique among its siblings; re-entry aggregates).
    count : completed entries of this span.
    seconds : total wall time accumulated across entries.
    counters : ``{key: value}`` charges made while this span was innermost.
    children : ``{name: SpanNode}`` nested spans.
    """

    __slots__ = ("name", "count", "seconds", "counters", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self.counters: dict[str, float] = {}
        self.children: dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def add_counter(self, key: str, value: float) -> None:
        self.counters[key] = self.counters.get(key, 0) + value

    @property
    def self_seconds(self) -> float:
        """Time spent in this span excluding its (timed) children."""
        return self.seconds - sum(c.seconds for c in self.children.values())

    def total(self, key: str) -> float:
        """Sum of ``counters[key]`` over this node and all descendants."""
        t = self.counters.get(key, 0)
        for c in self.children.values():
            t += c.total(key)
        return t

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "SpanNode"]]:
        """Depth-first ``(depth, node)`` traversal (children in insertion
        order — i.e. first-entered first)."""
        yield depth, self
        for c in self.children.values():
            yield from c.walk(depth + 1)

    def merge(self, other: "SpanNode") -> None:
        """Fold ``other``'s aggregates into this node, recursively."""
        self.count += other.count
        self.seconds += other.seconds
        for key, value in other.counters.items():
            self.add_counter(key, value)
        for name, child in other.children.items():
            self.child(name).merge(child)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "seconds": self.seconds,
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanNode":
        node = cls(data["name"])
        node.count = int(data.get("count", 0))
        node.seconds = float(data.get("seconds", 0.0))
        node.counters = dict(data.get("counters", {}))
        for child in data.get("children", []):
            node.children[child["name"]] = cls.from_dict(child)
        return node

    def __repr__(self) -> str:
        return (
            f"SpanNode({self.name!r}, count={self.count}, "
            f"seconds={self.seconds:.6f}, children={len(self.children)})"
        )


class Recorder:
    """Collects a span tree, counters, and gauges for one traced run.

    Not thread-safe by design: one recorder per thread (the parallel
    executor gives each worker its own and merges with :meth:`absorb`).
    """

    def __init__(self, meta: dict | None = None):
        self.root = SpanNode("root")
        self.gauges: dict[str, Any] = {}
        self.meta: dict[str, Any] = dict(meta or {})
        self.telemetry: list = []  # ConvergenceTelemetry streams, in order
        self._stack: list[SpanNode] = [self.root]

    # -- recording -------------------------------------------------------

    @contextmanager
    def span(self, name: str):
        """Open (or re-enter, aggregating) a child span of the current one."""
        node = self._stack[-1].child(name)
        self._stack.append(node)
        t0 = time.perf_counter()
        try:
            yield node
        finally:
            node.seconds += time.perf_counter() - t0
            node.count += 1
            self._stack.pop()

    def add(self, key: str, value: float) -> None:
        """Charge ``value`` to counter ``key`` on the innermost open span."""
        self._stack[-1].add_counter(key, value)

    def gauge(self, key: str, value: Any) -> None:
        """Set a run-level gauge (last write wins)."""
        self.gauges[key] = value

    def add_telemetry(self, stream) -> None:
        """Attach a :class:`~repro.instrument.telemetry.ConvergenceTelemetry`
        stream; it rides along in the JSON trace (``repro report`` plots
        these as convergence curves)."""
        self.telemetry.append(stream)

    def flop_counter(self, mirror: FlopCounter | None = None) -> "RecorderFlopCounter":
        """A :class:`FlopCounter` whose charges also land on this recorder
        (and are forwarded to ``mirror`` when given)."""
        return RecorderFlopCounter(self, mirror=mirror)

    @contextmanager
    def activate(self):
        """Install as the thread-local current recorder for the block."""
        prev = getattr(_TLS, "current", None)
        _TLS.current = self
        try:
            yield self
        finally:
            _TLS.current = prev

    def absorb(self, other: "Recorder", under: str | None = None) -> None:
        """Merge another recorder's spans/counters under the current span
        (namespaced beneath a child named ``under`` when given); gauges are
        copied with an ``under.`` prefix."""
        target = self._stack[-1]
        if under is not None:
            target = target.child(under)
        for key, value in other.root.counters.items():
            target.add_counter(key, value)
        for name, child in other.root.children.items():
            target.child(name).merge(child)
        prefix = f"{under}." if under else ""
        for key, value in other.gauges.items():
            self.gauges[f"{prefix}{key}"] = value
        for stream in other.telemetry:
            self.telemetry.append(
                stream.renamed(f"{prefix}{stream.name}") if prefix else stream
            )

    # -- queries ---------------------------------------------------------

    def total(self, key: str) -> float:
        """Trace-wide total of counter ``key``."""
        return self.root.total(key)

    def find(self, path: str) -> SpanNode | None:
        """Look up a span by ``/``-separated path, e.g.
        ``"multistart_sshopm/sweep/kernel.vectorized.ax_m1"``."""
        node = self.root
        for part in path.split("/"):
            node = node.children.get(part)
            if node is None:
                return None
        return node

    # -- export ----------------------------------------------------------

    def to_dict(self) -> dict:
        out = {
            "schema": TRACE_SCHEMA,
            "meta": dict(self.meta),
            "gauges": dict(self.gauges),
            "root": self.root.to_dict(),
        }
        if self.telemetry:  # optional, additive key of repro-trace/1
            out["telemetry"] = [s.to_dict() for s in self.telemetry]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Recorder":
        if data.get("schema", TRACE_SCHEMA) != TRACE_SCHEMA:
            raise ValueError(f"unsupported trace schema {data.get('schema')!r}")
        rec = cls(meta=data.get("meta"))
        rec.gauges = dict(data.get("gauges", {}))
        rec.root = SpanNode.from_dict(data["root"])
        rec._stack = [rec.root]
        if data.get("telemetry"):
            from repro.instrument.telemetry import ConvergenceTelemetry

            rec.telemetry = [
                ConvergenceTelemetry.from_dict(s) for s in data["telemetry"]
            ]
        return rec

    def save_trace(self, path) -> None:
        """Write the JSON trace (schema ``repro-trace/1``) to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=_json_default)
            fh.write("\n")

    def report(self, counters: tuple[str, ...] | None = None) -> str:
        """Fixed-width ASCII summary of the span tree.

        Counter columns default to every key with a nonzero trace total,
        in a canonical order (``flops`` first).
        """
        if counters is None:
            seen: dict[str, None] = {}
            for _, node in self.root.walk():
                for key in node.counters:
                    seen.setdefault(key)
            canonical = ["flops", "intops", "loads", "stores", "bytes"]
            counters = tuple(
                sorted(seen, key=lambda k: (canonical.index(k) if k in canonical
                                            else len(canonical), k))
            )
        headers = ["span", "count", "total ms", "self ms", *counters]
        rows: list[list[str]] = []
        for depth, node in self.root.walk():
            if node is self.root:
                continue
            rows.append(
                [
                    "  " * (depth - 1) + node.name,
                    str(node.count),
                    f"{node.seconds * 1e3:.3f}",
                    f"{node.self_seconds * 1e3:.3f}",
                    *[_fmt_count(node.counters.get(k, 0)) for k in counters],
                ]
            )
        if not rows:
            rows.append(["(no spans recorded)"] + [""] * (len(headers) - 1))
        widths = [
            max(len(headers[c]), *(len(r[c]) for r in rows)) + 2
            for c in range(len(headers))
        ]
        lines = ["".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines.append("".join("-" * (w - 1) + " " for w in widths))
        for r in rows:
            lines.append("".join(c.ljust(w) for c, w in zip(r, widths)))
        totals = ["TOTAL", "", f"{sum(c.seconds for c in self.root.children.values()) * 1e3:.3f}",
                  "", *[_fmt_count(self.total(k)) for k in counters]]
        lines.append("".join(str(c).ljust(w) for c, w in zip(totals, widths)))
        if self.gauges:
            lines.append("gauges: " + ", ".join(f"{k}={v}" for k, v in sorted(self.gauges.items())))
        return "\n".join(lines)


class RecorderFlopCounter(FlopCounter):
    """Bridge between the legacy ``counter=`` plumbing and a recorder.

    Behaves as a normal :class:`FlopCounter` (its own tallies accumulate)
    while duplicating every charge onto the recorder's innermost open span
    and onto an optional ``mirror`` counter — guaranteeing that trace flop
    totals and ``FlopCounter`` totals agree by construction.
    """

    def __init__(self, recorder: Recorder, mirror: FlopCounter | None = None):
        super().__init__()
        self._recorder = recorder
        self._mirror = mirror

    def add_flops(self, k: int) -> None:
        self.flops += k
        self._recorder.add("flops", k)
        if self._mirror is not None:
            self._mirror.add_flops(k)

    def add_intops(self, k: int) -> None:
        self.intops += k
        self._recorder.add("intops", k)
        if self._mirror is not None:
            self._mirror.add_intops(k)

    def add_loads(self, k: int) -> None:
        self.loads += k
        self._recorder.add("loads", k)
        if self._mirror is not None:
            self._mirror.add_loads(k)

    def add_stores(self, k: int) -> None:
        self.stores += k
        self._recorder.add("stores", k)
        if self._mirror is not None:
            self._mirror.add_stores(k)


# -- thread-local current recorder and zero-cost module helpers ----------

_TLS = threading.local()


class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def current_recorder() -> Recorder | None:
    """The recorder installed on this thread, or ``None`` (tracing off)."""
    return getattr(_TLS, "current", None)


def span(name: str):
    """Context manager opening ``name`` on the current recorder; a shared
    no-op object when tracing is disabled (no allocation, no timing)."""
    rec = getattr(_TLS, "current", None)
    if rec is None:
        return _NULL_SPAN
    return rec.span(name)


def count(key: str, value: float) -> None:
    """Charge a counter on the current recorder's innermost span (no-op
    when tracing is disabled)."""
    rec = getattr(_TLS, "current", None)
    if rec is not None:
        rec.add(key, value)


def gauge(key: str, value) -> None:
    """Set a gauge on the current recorder (no-op when disabled)."""
    rec = getattr(_TLS, "current", None)
    if rec is not None:
        rec.gauge(key, value)


@contextmanager
def recording(meta: dict | None = None):
    """Create a fresh :class:`Recorder` and activate it for the block::

        with recording() as rec:
            find_eigenpairs(A, num_starts=64)
        print(rec.report())
    """
    rec = Recorder(meta=meta)
    with rec.activate():
        yield rec


def load_trace(path) -> Recorder:
    """Read a trace written by :meth:`Recorder.save_trace`."""
    with open(path) as fh:
        return Recorder.from_dict(json.load(fh))


def _fmt_count(v: float) -> str:
    if v == 0:
        return ""
    if v == int(v):
        return str(int(v))
    return f"{v:.3g}"


def _json_default(obj):
    try:
        import numpy as np

        if isinstance(obj, np.generic):
            return obj.item()
    except Exception:  # pragma: no cover - numpy is a hard dependency
        pass
    return str(obj)
