"""Bounded, low-overhead typed event stream for fleet runs.

A fleet run — thread tier, process tier, or a single inline fleet — can
spool *typed events* (shard start/finish, lane retirements, compactions,
steals, requeues, guard trips, plan-cache hits) to a per-run JSONL file.
The spool is the operational complement of the span tree: spans answer
"where did the time go" after the run, the spool answers "what is the
fleet doing *right now*" while it runs (``repro top`` tails it live).

Design constraints, in order:

* **Crash-safe by construction.**  Every event is one ``os.write`` on an
  ``O_APPEND`` descriptor — a single atomic append per line, never a
  buffered stream.  A worker that is SIGKILLed mid-run leaves at worst
  one torn final line, which :func:`read_events` skips; everything the
  worker wrote before the kill survives.
* **Bounded.**  High-rate engine events (``retire``/``compact``/
  ``plan_cache``) are decimated above :data:`DEFAULT_RATE_CAP` events
  per second per spool; dropped counts are accounted in a ``decimated``
  event so the file records that (and how much) it thinned.  Lifecycle
  events (:data:`NO_DECIMATE`) are never dropped.
* **Disabled = free.**  Exactly like :func:`repro.instrument.span`, the
  module-level :func:`emit` reads one thread-local and returns when no
  spool is active, so instrumented hot paths cost one attribute lookup
  when events are off.

Correlation model: every line carries ``run`` (the run id minted by
:func:`new_run_id`), ``src`` (``"parent"``, ``"w3"``, ``"t0"``...), and a
wall-clock ``t``.  The same run id is stamped into the trace meta, the
checkpoint header, and bench documents, so events ↔ spans ↔ metrics ↔
checkpoints from one run join on it.  See ``docs/events.md``.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import threading
import time
import uuid
from pathlib import Path

__all__ = [
    "DEFAULT_RATE_CAP",
    "EVENTS_SCHEMA",
    "EVENT_TYPES",
    "NO_DECIMATE",
    "EventSpool",
    "current_spool",
    "emit",
    "new_run_id",
    "provenance",
    "read_events",
    "use_spool",
    "validate_event",
]

#: Schema tag on the spool's header line.  Distinct from the
#: ``repro-events/1`` *trace conversion* schema in
#: :func:`repro.instrument.export.jsonl_events` — that one is a post-hoc
#: flattening of a span tree; this one is a live operational stream.
EVENTS_SCHEMA = "repro-fleet-events/1"

#: Decimation threshold: non-lifecycle events beyond this many per
#: second (per spool) are counted and dropped, not written.
DEFAULT_RATE_CAP = 500

#: Every line carries these; ``src`` identifies the emitting actor
#: (``"parent"``, process worker ``"w<id>"``, thread worker ``"t<id>"``).
BASE_FIELDS = ("ev", "t", "run", "src")

#: event type -> payload fields required by :func:`validate_event`.
#: Emitters may add extra fields; readers must ignore unknown ones.
EVENT_TYPES = {
    "header": ("schema", "host", "pid", "version"),
    "run_start": ("tensors", "lanes", "workers", "shards", "executor"),
    "run_finish": ("seconds", "requeues", "failed"),
    "worker_start": ("pid",),
    "worker_exit": ("shards",),
    "shard_start": ("shard", "lo", "hi"),
    "shard_finish": ("shard", "seconds", "sweeps"),
    "steal": ("shard",),
    "requeue": ("shard", "attempt"),
    "writeoff": ("shard",),
    "retire": ("converged", "failed", "active"),
    "compact": ("active", "total"),
    "guard_trip": ("reason",),
    "plan_cache": ("outcome",),
    "decimated": ("dropped",),
    "stop": ("active",),
    # ``repro serve`` request/daemon lifecycle (see docs/serve.md)
    "job_submit": ("job",),
    "job_start": ("job",),
    "job_finish": ("job", "status", "seconds"),
    "job_reject": ("reason",),
    "drain_start": ("inflight", "queued"),
    "drain_finish": ("seconds", "jobs"),
    "breaker": ("state",),
}

#: Lifecycle events exempt from decimation: each is emitted O(shards) or
#: O(workers) times per run, and losing one corrupts dashboard state
#: (an unmatched ``shard_start`` reads as a hung shard forever).
NO_DECIMATE = frozenset({
    "header", "run_start", "run_finish", "worker_start", "worker_exit",
    "shard_start", "shard_finish", "steal", "requeue", "writeoff",
    "guard_trip", "decimated", "stop",
    "job_submit", "job_start", "job_finish", "job_reject",
    "drain_start", "drain_finish", "breaker",
})


def new_run_id() -> str:
    """A fresh 12-hex-digit run id correlating one run's artifacts."""
    return uuid.uuid4().hex[:12]


def provenance() -> dict:
    """The ``{host, pid, version}`` stamp shared by every artifact writer
    (event spool header, trace meta, checkpoints, bench documents)."""
    from repro import __version__

    return {
        "host": socket.gethostname(),
        "pid": os.getpid(),
        "version": __version__,
    }


class EventSpool:
    """Append-only JSONL event sink with atomic line writes.

    Construct via :meth:`open` (which writes the ``header`` line) and
    close via :meth:`close` / the context-manager protocol.  Thread-safe:
    the thread tier's workers share one spool through :class:`BoundSpool`
    views; rate accounting and the fd are guarded by one lock.
    """

    def __init__(self, fd: int, path, run_id: str, src: str,
                 rate_cap: int | None):
        self._fd = fd
        self.path = str(path)
        self.run_id = run_id
        self.src = src
        self.rate_cap = rate_cap
        self.emitted = 0
        self.closed = False
        self._lock = threading.Lock()
        self._window_start = 0.0
        self._window_count = 0
        self._dropped = 0

    @classmethod
    def open(cls, path, *, run_id: str | None = None, src: str = "parent",
             rate_cap: int | None = DEFAULT_RATE_CAP,
             header: bool = True) -> "EventSpool":
        """Open (append) ``path`` as an event spool.

        Several actors may append to the same file concurrently — each
        opens its own ``O_APPEND`` descriptor (process workers call this
        with ``header=False`` and their own ``src``), and the kernel
        serializes whole-line appends.
        """
        fd = os.open(str(path),
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        spool = cls(fd, path, run_id or new_run_id(), src, rate_cap)
        if header:
            spool.emit("header", schema=EVENTS_SCHEMA, **provenance())
        return spool

    def bound(self, src: str) -> "BoundSpool":
        """A view emitting through this spool with a different ``src``
        (thread-tier workers sharing the parent's descriptor)."""
        return BoundSpool(self, src)

    def emit(self, ev: str, **fields) -> bool:
        """Append one event line; returns ``False`` if decimated/closed.

        The line is a single ``os.write`` — atomic on POSIX ``O_APPEND``
        descriptors for these sizes — so a reader (or a kill) never sees
        an interleaved half-line from a live writer.
        """
        if self.closed:
            return False
        now = time.time()
        with self._lock:
            if self.closed:  # lost the close race
                return False
            if self.rate_cap and ev not in NO_DECIMATE:
                if now - self._window_start >= 1.0:
                    self._flush_dropped(now)
                    self._window_start = now
                    self._window_count = 0
                if self._window_count >= self.rate_cap:
                    self._dropped += 1
                    return False
                self._window_count += 1
            rec = {"ev": ev, "t": now, "run": self.run_id, "src": self.src}
            rec.update(fields)
            self._write(rec)
        return True

    def _flush_dropped(self, now: float) -> None:
        # caller holds the lock
        if self._dropped:
            self._write({"ev": "decimated", "t": now, "run": self.run_id,
                         "src": self.src, "dropped": self._dropped})
            self._dropped = 0

    def _write(self, rec: dict) -> None:
        line = json.dumps(rec, separators=(",", ":"), default=str) + "\n"
        os.write(self._fd, line.encode("utf-8"))
        self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self._flush_dropped(time.time())
            self.closed = True
            os.close(self._fd)

    def __enter__(self) -> "EventSpool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BoundSpool:
    """A ``src``-rebinding view over a shared :class:`EventSpool`."""

    def __init__(self, spool: EventSpool, src: str):
        self._spool = spool
        self.src = src

    @property
    def path(self) -> str:
        return self._spool.path

    @property
    def run_id(self) -> str:
        return self._spool.run_id

    def emit(self, ev: str, **fields) -> bool:
        fields.setdefault("src", self.src)
        return self._spool.emit(ev, **fields)

    def bound(self, src: str) -> "BoundSpool":
        return BoundSpool(self._spool, src)

    def close(self) -> None:
        """No-op: the underlying spool's owner closes it."""


_TLS = threading.local()


def current_spool():
    """The active spool of this thread, or ``None`` (events disabled)."""
    return getattr(_TLS, "current", None)


@contextlib.contextmanager
def use_spool(spool):
    """Make ``spool`` the active event sink for this thread."""
    prev = getattr(_TLS, "current", None)
    _TLS.current = spool
    try:
        yield spool
    finally:
        _TLS.current = prev


def emit(ev: str, **fields) -> bool:
    """Module-level emit through the active spool; no-op when disabled.

    This is the hook instrumented hot paths call — the disabled cost is
    one thread-local read plus a ``None`` check, the same budget
    discipline as :func:`repro.instrument.span` (see
    ``benchmarks/bench_events_overhead.py``).
    """
    spool = getattr(_TLS, "current", None)
    if spool is None:
        return False
    return spool.emit(ev, **fields)


def read_events(path, *, strict: bool = False) -> list[dict]:
    """Parse an event spool, tolerating torn/corrupt lines.

    A worker killed mid-``write`` can leave one partial line (typically
    the last, but concurrent appenders make no ordering promise); those
    lines are skipped — never raised — unless ``strict=True``.  Returns
    the events in file order.
    """
    data = Path(path).read_bytes()
    records: list[dict] = []
    for lineno, raw in enumerate(data.split(b"\n"), start=1):
        if not raw.strip():
            continue
        try:
            rec = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            if strict:
                raise ValueError(
                    f"{path}:{lineno}: unparseable event line: {exc}"
                ) from exc
            continue
        if not isinstance(rec, dict):
            if strict:
                raise ValueError(
                    f"{path}:{lineno}: event line is not an object")
            continue
        records.append(rec)
    return records


def validate_event(rec: dict) -> dict:
    """Check one event against the ``repro-fleet-events/1`` schema.

    Returns ``rec`` unchanged; raises :class:`ValueError` naming the
    first violation (missing base field, unknown type, missing payload
    field).  Extra fields are allowed — the schema is open for forward
    compatibility.
    """
    if not isinstance(rec, dict):
        raise ValueError(f"event must be an object, got {type(rec).__name__}")
    for key in BASE_FIELDS:
        if key not in rec:
            raise ValueError(f"event missing base field {key!r}: {rec!r}")
    if not isinstance(rec["t"], (int, float)):
        raise ValueError(f"event 't' must be a number, got {rec['t']!r}")
    ev = rec["ev"]
    if ev not in EVENT_TYPES:
        raise ValueError(f"unknown event type {ev!r}")
    for key in EVENT_TYPES[ev]:
        if key not in rec:
            raise ValueError(f"{ev!r} event missing field {key!r}: {rec!r}")
    return rec
