"""Instrumented kernel wrappers.

Wraps a :class:`~repro.kernels.dispatch.KernelPair` so every ``A x^m`` /
``A x^{m-1}`` call records an aggregated span (``kernel.<variant>.ax_m``)
on the current recorder and charges the symmetric-kernel flop model of
Table II plus a roofline-style traffic estimate (elements read/written
times the dtype width).  The per-tensor kernels don't take a ``counter=``
argument — their cost is charged analytically from the exact counted
formulas of :mod:`repro.kernels.compressed`, which is what the paper's
cost accounting uses for the same operation.

Flop charges go through a caller-supplied :class:`FlopCounter` when given
(usually a :class:`~repro.instrument.recorder.RecorderFlopCounter` bridge),
so legacy counters and traces observe the identical stream.
"""

from __future__ import annotations

from functools import lru_cache

from repro.instrument.recorder import current_recorder, span
from repro.kernels.dispatch import KernelPair
from repro.util.flopcount import FlopCounter

__all__ = ["instrumented_pair", "kernel_cost_model"]

_FLOAT_BYTES = 8  # the per-tensor kernels run in float64


@lru_cache(maxsize=None)
def kernel_cost_model(m: int, n: int) -> dict[str, int]:
    """Per-call cost model of one symmetric kernel evaluation at ``(m, n)``.

    Returns exact counted flops of the Figure-2/3 kernels (the symmetric
    accounting all variants are credited with — variants differ in *speed*,
    not useful arithmetic) and element-traffic estimates.
    """
    from repro.kernels.compressed import symmetric_flops_scalar, symmetric_flops_vector
    from repro.util.combinatorics import num_unique_entries

    U = num_unique_entries(m, n)
    return {
        "flops_scalar": symmetric_flops_scalar(m, n),
        "flops_vector": symmetric_flops_vector(m, n),
        "loads": U + n,  # unique tensor values + the vector
        "stores_scalar": 1,
        "stores_vector": n,
    }


def instrumented_pair(
    pair: KernelPair, counter: FlopCounter | None = None
) -> KernelPair:
    """An instrumented clone of ``pair``.

    Each call opens ``kernel.<name>.ax_m`` / ``kernel.<name>.ax_m1`` on the
    current recorder (no-op when tracing is off) and charges the
    :func:`kernel_cost_model` flops/loads/stores to ``counter`` (when
    given) — pass a recorder bridge so the charges land on the open span.
    Bytes moved are recorded on the span directly.
    """
    scalar_span = f"kernel.{pair.name}.ax_m"
    vector_span = f"kernel.{pair.name}.ax_m1"

    def ax_m(tensor, x):
        cost = kernel_cost_model(tensor.m, tensor.n)
        with span(scalar_span):
            y = pair.ax_m(tensor, x)
            if counter is not None:
                counter.add_flops(cost["flops_scalar"])
                counter.add_loads(cost["loads"])
                counter.add_stores(cost["stores_scalar"])
            rec = current_recorder()
            if rec is not None:
                rec.add("bytes", (cost["loads"] + cost["stores_scalar"]) * _FLOAT_BYTES)
        return y

    def ax_m1(tensor, x):
        cost = kernel_cost_model(tensor.m, tensor.n)
        with span(vector_span):
            y = pair.ax_m1(tensor, x)
            if counter is not None:
                counter.add_flops(cost["flops_vector"])
                counter.add_loads(cost["loads"])
                counter.add_stores(cost["stores_vector"])
            rec = current_recorder()
            if rec is not None:
                rec.add("bytes", (cost["loads"] + cost["stores_vector"]) * _FLOAT_BYTES)
        return y

    return KernelPair(name=pair.name, ax_m=ax_m, ax_m1=ax_m1)
