"""Structured logging with run/shard/worker correlation fields.

Everything here is stdlib ``logging`` — no new dependencies, no global
side effects beyond a ``NullHandler`` on the ``"repro"`` root (so library
use never prints or warns about unconfigured logging).  The additions
over bare ``logging``:

* :func:`get_logger` returns an adapter whose calls accept a ``fields=``
  dict merged with the ambient :func:`log_context` — the correlation
  fields (``run``, ``worker``, ``shard``) ride on the record instead of
  being string-formatted into the message;
* :class:`JSONLogFormatter` renders each record as one JSON object per
  line, joinable with the event spool and trace on ``run``;
* :func:`configure_logging` is the single idempotent entry point the CLI
  maps ``--log-level`` / ``--log-json`` onto.

The operational warning surface (``warnings.warn`` on degraded mode,
clamping, fallbacks) is intentionally *kept*: warnings are the one-shot,
caller-blamed API contract callers filter on.  Structured logs run
alongside them as the machine-readable operational record.
"""

from __future__ import annotations

import contextlib
import json
import logging
import threading

__all__ = [
    "JSONLogFormatter",
    "TextLogFormatter",
    "configure_logging",
    "get_logger",
    "log_context",
]

#: Root logger name every repro module logs beneath.
ROOT_LOGGER = "repro"

_TLS = threading.local()

# library default: silent until the application configures a handler
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def _context() -> dict:
    stack = getattr(_TLS, "stack", None)
    return stack[-1] if stack else {}


@contextlib.contextmanager
def log_context(**fields):
    """Attach correlation fields to every log record in this thread.

    Contexts nest — inner fields shadow outer ones::

        with log_context(run=run_id, worker="w3"):
            log.info("claimed", fields={"shard": sid})
            # -> {"msg": "claimed", "run": ..., "worker": "w3", "shard": 4}
    """
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    merged = {**(stack[-1] if stack else {}), **fields}
    stack.append(merged)
    try:
        yield
    finally:
        stack.pop()


class _FieldsAdapter(logging.LoggerAdapter):
    """Merge ambient :func:`log_context` with per-call ``fields=``."""

    def process(self, msg, kwargs):
        fields = {**_context(), **(kwargs.pop("fields", None) or {})}
        extra = kwargs.setdefault("extra", {})
        extra["repro_fields"] = fields
        return msg, kwargs


def get_logger(name: str) -> logging.LoggerAdapter:
    """A structured logger under the ``repro`` hierarchy.

    ``name`` is the module-ish suffix (``"parallel.procfleet"``); calls
    accept an optional ``fields=`` dict of correlation values.
    """
    return _FieldsAdapter(logging.getLogger(f"{ROOT_LOGGER}.{name}"), {})


class JSONLogFormatter(logging.Formatter):
    """One JSON object per record: ``t``/``level``/``logger``/``msg``
    plus the merged correlation fields."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "t": record.created,
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        doc.update(getattr(record, "repro_fields", None) or {})
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, separators=(",", ":"), default=str)


class TextLogFormatter(logging.Formatter):
    """Human-readable line with correlation fields as ``key=value``."""

    def __init__(self):
        super().__init__("%(asctime)s %(levelname)-7s %(name)s %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        fields = getattr(record, "repro_fields", None)
        if fields:
            tail = " ".join(f"{k}={v}" for k, v in fields.items())
            return f"{base} [{tail}]"
        return base


def configure_logging(level: str | int = "info", *,
                      json_lines: bool = False,
                      stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree (idempotent).

    Installs one stream handler (default ``sys.stderr``) with either the
    JSON-lines or the text formatter, replacing any handler a previous
    call installed — repeated CLI invocations in one process never stack
    duplicate handlers.  Returns the configured root.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_configured", False):
            root.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JSONLogFormatter() if json_lines
                         else TextLogFormatter())
    handler._repro_configured = True
    root.addHandler(handler)
    root.propagate = False
    return root
