"""The fleet solve engine: one vectorized SS-HOPM sweep over a whole workload.

:func:`~repro.core.multistart.multistart_sshopm` vectorizes the ``V``
starts of each tensor but advances every (tensor, start) pair to the
common ``max_iters`` horizon, carrying converged pairs as dead weight in
every kernel call.  The fleet engine instead treats the workload as a
flat pool of ``L = T * V`` independent *lanes* and keeps the kernels
dense over the *active* lanes only:

* every lane carries its own state — iterate, lambda, shift — so shifts
  can escalate per lane (adaptive mode) without splitting the batch;
* converged and numerically-dead lanes are retired immediately (their
  outputs written back to the full-result arrays) and physically removed
  from the working arrays at the next *compaction*, the host-side analog
  of persistent-kernel work re-binning on a GPU;
* all kernel calls go through one :class:`~repro.kernels.plan.KernelPlan`
  resolved from the process-wide plan cache, so table and codegen costs
  are paid once per ``(m, n, variant)`` across the entire fleet.

Lane ``l`` maps to pair ``(t, v) = divmod(l, V)``; results come back as
``(T, V)`` arrays in a :class:`~repro.core.results.FleetResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import SolveConfig, reconcile_max_iters, resolve_option
from repro.core.multistart import starting_vectors
from repro.core.results import FleetResult
from repro.instrument import current_recorder, gauge as _gauge
from repro.instrument import span as _span
from repro.instrument.events import emit as _emit
from repro.instrument.metrics import (
    observe_fleet_compaction,
    observe_solver_run,
)
from repro.instrument.telemetry import ConvergenceTelemetry, telemetry_enabled
from repro.kernels.plan import KernelPlan, get_plan
from repro.resilience.guards import LaneGuard, resolve_guards
from repro.symtensor.indexing import multiplicity_table
from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch
from repro.util.flopcount import FlopCounter, null_counter

__all__ = ["FleetWorkspace", "fleet_solve", "suggested_shifts"]

# escalate a lane's shift after this many consecutive sign-alternating
# lambda deltas (the too-small-shift signature; cf. GuardConfig)
_OSC_WINDOW = 4


def suggested_shifts(tensors: SymmetricTensorBatch) -> np.ndarray:
    """Per-tensor convergence-guaranteeing shifts ``m (m-1) ||A_t||_F``.

    The batched analog of :func:`repro.core.sshopm.suggested_shift`,
    computed in one vectorized pass over the compressed values.
    """
    m, n = tensors.m, tensors.n
    mult = multiplicity_table(m, n).astype(np.float64)
    norms = np.sqrt((mult * np.asarray(tensors.values, np.float64) ** 2).sum(-1))
    return m * (m - 1) * norms


@dataclass
class FleetWorkspace:
    """Externally-owned fleet output buffers.

    Passing one as ``fleet_solve(..., out=ws)`` makes the engine write
    every result directly into these arrays instead of allocating its
    own — the zero-copy hook the process fleet uses to land each shard's
    results in a preallocated shared-memory block
    (:class:`repro.parallel.shm.SharedResultBlock`), so only shard
    *descriptors* ever cross a pipe.  The returned
    :class:`~repro.core.results.FleetResult` arrays are views of these
    buffers.

    Shapes are the ``(T, V)`` lane grid (``eigenvectors`` is
    ``(T, V, n)``); every buffer must be C-contiguous so the engine's
    flat ``(L,)`` lane views alias it rather than copy.
    """

    eigenvalues: np.ndarray  # (T, V) float64
    eigenvectors: np.ndarray  # (T, V, n) compute dtype
    converged: np.ndarray  # (T, V) bool
    iterations: np.ndarray  # (T, V) int64
    failed: np.ndarray  # (T, V) bool
    shifts: np.ndarray  # (T, V) float64

    @classmethod
    def allocate(cls, T: int, V: int, n: int, dtype=np.float64) -> "FleetWorkspace":
        """Fresh C-contiguous buffers for a ``(T, V)`` lane grid."""
        return cls(
            eigenvalues=np.full((T, V), np.nan),
            eigenvectors=np.full((T, V, n), np.nan, dtype=dtype),
            converged=np.zeros((T, V), dtype=bool),
            iterations=np.zeros((T, V), dtype=np.int64),
            failed=np.zeros((T, V), dtype=bool),
            shifts=np.full((T, V), np.nan),
        )

    def lane_views(self, T: int, V: int, n: int, dtype):
        """Validated flat ``(L, ...)`` views over the ``(T, V, ...)``
        buffers, in the engine's output order.  Raises ``ValueError`` on
        any shape/dtype/contiguity mismatch — a reshape that silently
        copied would drop results on the floor."""
        L = T * V
        specs = [
            ("eigenvalues", self.eigenvalues, (T, V), np.float64, (L,)),
            ("eigenvectors", self.eigenvectors, (T, V, n), np.dtype(dtype), (L, n)),
            ("converged", self.converged, (T, V), np.bool_, (L,)),
            ("iterations", self.iterations, (T, V), np.int64, (L,)),
            ("failed", self.failed, (T, V), np.bool_, (L,)),
            ("shifts", self.shifts, (T, V), np.float64, (L,)),
        ]
        views = []
        for name, arr, shape, want_dtype, flat_shape in specs:
            if arr.shape != shape:
                raise ValueError(
                    f"workspace {name} has shape {arr.shape}, need {shape}")
            if arr.dtype != np.dtype(want_dtype):
                raise ValueError(
                    f"workspace {name} has dtype {arr.dtype}, need "
                    f"{np.dtype(want_dtype)}")
            if not arr.flags.c_contiguous:
                raise ValueError(f"workspace {name} must be C-contiguous")
            view = arr.reshape(flat_shape)
            if not np.shares_memory(view, arr):  # pragma: no cover - guarded above
                raise ValueError(f"workspace {name} reshape copied")
            views.append(view)
        return tuple(views)


def _as_batch(tensors) -> SymmetricTensorBatch:
    if isinstance(tensors, SymmetricTensor):
        return SymmetricTensorBatch(tensors.values[None, :], tensors.m, tensors.n)
    return tensors


def _resolve_starts(starts, num_starts, n, scheme, rng, dtype) -> np.ndarray:
    if starts is None:
        return starting_vectors(num_starts, n, scheme=scheme, rng=rng, dtype=dtype)
    starts = np.asarray(starts, dtype=dtype)
    if starts.ndim != 2 or starts.shape[1] != n:
        raise ValueError(f"starts must have shape (V, {n}), got {starts.shape}")
    norms = np.linalg.norm(starts, axis=1, keepdims=True)
    if np.any(norms == 0):
        raise ValueError("starting vectors must be nonzero")
    return starts / norms


def fleet_solve(
    tensors: SymmetricTensorBatch | SymmetricTensor,
    num_starts: int | None = None,
    alpha: float | None = None,
    tol: float | None = None,
    max_iters: int | None = None,
    starts: np.ndarray | None = None,
    scheme: str | None = None,
    variant: str | None = None,
    dtype=None,
    rng=None,
    counter: FlopCounter | None = None,
    config: SolveConfig | None = None,
    *,
    backend: str | None = None,
    adaptive: bool | str = False,
    tau: float = 1e-6,
    compact_every: int = 8,
    plan: KernelPlan | None = None,
    out: FleetWorkspace | None = None,
    telemetry: bool | None = None,
    guards=None,
    stop=None,
) -> FleetResult:
    """Solve the whole ``T``-tensor, ``V``-start workload in one fleet run.

    Parameters mirror :func:`~repro.core.multistart.multistart_sshopm`
    (same defaults, same ``config`` resolution); the engine-specific ones:

    variant : batched kernel variant for the :class:`KernelPlan`
        (``"vectorized"``, ``"unrolled"``, ``"unrolled_cse"``,
        ``"blocked"``, their ``batched*`` aliases, or ``"auto"``).
        Resolved through the ``backend`` config field when unset.
    backend : codegen backend compiling the plan's kernels (``"numpy"``,
        ``"numba"``, or ``"auto"`` to race them per shape; see
        :mod:`repro.kernels.codegen`).  Resolved through the
        ``codegen_backend`` config field when unset.  Degrades gracefully:
        requesting ``"numba"`` without numba installed runs the numpy
        path and records it on ``plan.effective_backend``.
    adaptive : ``True`` gives each lane its own shift and escalates it
        halfway toward the tensor's convergence-guaranteeing bound (see
        :func:`suggested_shifts`) whenever the lane's lambda sequence
        sign-alternates for ``_OSC_WINDOW`` consecutive sweeps — the
        fleet analog of :func:`repro.solvers.adaptive.adaptive_sshopm`.
        The string ``"geap"`` instead recomputes every live lane's shift
        each sweep from the projected-Hessian rule
        (:func:`repro.solvers.geap.projected_shift`, margin ``tau``) —
        the fleet lane version of :func:`repro.solvers.geap.geap`
        (``mode="max"`` only).
    tau : convexity margin for ``adaptive="geap"`` (ignored otherwise).
    compact_every : sweeps between active-set compactions.  Between
        compactions retired lanes ride along masked; each compaction
        gathers the survivors so kernel work tracks the live population.
    plan : prebuilt :class:`KernelPlan` to use instead of a cache lookup
        (the parallel sharding path passes one per worker).
    out : a :class:`FleetWorkspace` of caller-owned ``(T, V)`` buffers the
        engine writes results into instead of allocating its own; the
        returned result's arrays are views of it.  The process fleet
        passes shard slices of a shared-memory result block here so
        results never cross a pipe.
    guards : per-lane semantics — an individual dying lane (NaN/Inf or
        collapsed update) is always retired and reported via
        ``result.failed``; enabling guards only makes *total* collapse
        (every lane dead) raise a structured
        :class:`~repro.resilience.guards.SolveFailure`.
    stop : optional zero-argument callable polled once per sweep — the
        cancellation hook deadlines, budget caps, and ``repro serve``
        drain ride on.  When it returns truthy the engine stops cleanly
        through the lane-retirement path: every still-active lane is
        written back (``converged=False``, ``failed=False``, its last
        iterate and current sweep count) and the result is returned with
        ``stopped=True``.  Lanes that already retired are untouched, so
        a stopped run never corrupts or drops completed work.

    Returns a :class:`~repro.core.results.FleetResult` whose ``(T, V)``
    lane grid matches what per-tensor ``multistart_sshopm`` calls would
    produce (up to dedup tolerance — lane schedules differ, fixed points
    do not).
    """
    max_iters = reconcile_max_iters(max_iters, None)
    # ``if adaptive:`` truthiness would silently give the string "geap"
    # the oscillation-escalation machinery — keep the two modes explicit
    if not (isinstance(adaptive, bool) or adaptive == "geap"):
        raise ValueError(
            f"adaptive must be a bool or 'geap', got {adaptive!r}")
    osc_adaptive = adaptive is True
    geap_mode = adaptive == "geap"
    num_starts = resolve_option("num_starts", num_starts, config, 32)
    alpha = resolve_option("alpha", alpha, config, 0.0)
    tol = resolve_option("tol", tol, config, 1e-10)
    max_iters = resolve_option("max_iters", max_iters, config, 500)
    scheme = resolve_option("scheme", scheme, config, "random")
    variant = resolve_option("backend", variant, config, "vectorized")
    backend = resolve_option("codegen_backend", backend, config, "numpy")
    dtype = resolve_option("dtype", dtype, config, np.float64)
    rng = resolve_option("rng", rng, config, None)
    guard_cfg = resolve_guards(resolve_option("guards", guards, config, None))
    if compact_every < 1:
        raise ValueError(f"compact_every must be >= 1, got {compact_every}")

    tensors = _as_batch(tensors)
    m, n = tensors.m, tensors.n
    T = len(tensors)
    counter = counter or null_counter()
    recorder = current_recorder()
    if recorder is not None:
        counter = recorder.flop_counter(mirror=counter)

    starts = _resolve_starts(starts, num_starts, n, scheme, rng, dtype)
    V = starts.shape[0]
    L = T * V

    if plan is None:
        plan = get_plan(m, n, variant, backend)
    elif (plan.m, plan.n) != (m, n):
        raise ValueError(
            f"plan is for shape {(plan.m, plan.n)} but batch is {(m, n)}"
        )

    _gauge("fleet.tensors", T)
    _gauge("fleet.starts", V)
    _gauge("fleet.variant", plan.variant)
    _gauge("fleet.codegen_backend", plan.effective_backend)
    _gauge("fleet.shape", [m, n])

    tel = None
    if telemetry_enabled(telemetry, recorder):
        tel = ConvergenceTelemetry(
            "fleet_solve",
            meta={"tensors": T, "starts": V, "alpha": alpha,
                  "variant": plan.variant, "shape": [m, n],
                  "adaptive": adaptive, "compact_every": compact_every},
        )
    guard = LaneGuard(guard_cfg, solver="fleet_solve", total_lanes=L)

    values = np.asarray(tensors.values, dtype=dtype)          # (T, U)
    # lane state (active working set; compactions shrink these arrays).
    # Retired lanes keep riding along between compactions — their outputs
    # are already written back, so their working rows are free to update
    # unconditionally (no masked assignments in the hot loop).
    idx = np.arange(L)                                        # global lane ids
    tensor_of = idx // V                                      # (A,)
    x = np.tile(starts, (T, 1)).astype(dtype, copy=True)      # (A, n)
    alpha_lane = np.full(L, alpha, dtype=np.float64)
    uniform_shift = not (osc_adaptive or geap_mode)           # scalar fast path
    any_neg = alpha < 0
    lane_vals = values[tensor_of]                             # (A, U)
    # one kernel per sweep: y = A x^{m-1} drives both the update and, via
    # lambda = A x^m = x . y, the eigenvalue — no separate ax_m call
    y = np.asarray(plan.ax_m1(lane_vals, x, counter=counter))
    lam = np.einsum("ij,ij->i", x, y, dtype=np.float64)
    live = np.ones(L, dtype=bool)
    if osc_adaptive:
        bounds = suggested_shifts(tensors)                    # (T,)
        prev_delta = np.zeros(L)
        osc = np.zeros(L, dtype=np.int64)
    if geap_mode:
        from repro.solvers.geap import projected_shift

        tensor_objs = [tensors[t] for t in range(T)]

    # full-workload outputs, written as lanes retire; with ``out=`` these
    # are flat views over the caller's buffers instead of fresh arrays
    if out is None:
        out_lam = np.full(L, np.nan)
        out_x = np.full((L, n), np.nan, dtype=dtype)
        out_conv = np.zeros(L, dtype=bool)
        out_iters = np.zeros(L, dtype=np.int64)
        out_failed = np.zeros(L, dtype=bool)
        out_alpha = np.full(L, alpha, dtype=np.float64)
    else:
        (out_lam, out_x, out_conv, out_iters,
         out_failed, out_alpha) = out.lane_views(T, V, n, dtype)
        out_lam.fill(np.nan)
        out_x.fill(np.nan)
        out_conv.fill(False)
        out_iters.fill(0)
        out_failed.fill(False)
        out_alpha.fill(alpha)

    sweeps = 0
    compactions = 0
    was_stopped = False

    def write_back(sel: np.ndarray, converged: bool, failed: bool) -> None:
        # every live lane iterates every sweep, so a retiring lane has done
        # exactly `sweeps` iterations
        gids = idx[sel]
        out_lam[gids] = lam[sel]
        out_x[gids] = x[sel]
        out_conv[gids] = converged
        out_failed[gids] = failed
        out_iters[gids] = sweeps
        out_alpha[gids] = alpha_lane[sel]

    t0 = time.perf_counter()
    with _span("fleet_solve"), np.errstate(invalid="ignore", over="ignore",
                                           divide="ignore"):
        for _ in range(max_iters):
            if not live.any():
                break
            if stop is not None and stop():
                # cancelled (deadline / budget / drain): retire the
                # still-active lanes through the normal write-back path
                # below, exactly like running out of iterations
                was_stopped = True
                _emit("stop", active=int(live.sum()), sweep=sweeps)
                break
            sweeps += 1
            with _span("sweep"):
                if geap_mode:
                    # per-sweep projected-Hessian shift, one lane at a
                    # time (the eigendecompositions dominate anyway)
                    for i in np.flatnonzero(live):
                        a = projected_shift(
                            tensor_objs[tensor_of[i]],
                            np.asarray(x[i], dtype=np.float64), tau, "max")
                        if np.isfinite(a):
                            alpha_lane[i] = a
                if uniform_shift:
                    x_new = y + alpha * x if alpha != 0.0 else y
                    if any_neg:
                        x_new = -x_new
                else:
                    x_new = y + alpha_lane[:, None] * x
                    if any_neg:
                        neg = alpha_lane < 0
                        x_new[neg] = -x_new[neg]
                norms = np.linalg.norm(x_new, axis=-1)
                dead = live & ((norms == 0) | ~np.isfinite(norms))
                if dead.any():
                    # retire with the pre-update (last finite) state
                    write_back(dead, converged=False, failed=True)
                if tel is not None:
                    x_prev = x
                safe = np.where(norms > 0, norms, 1.0)
                x = x_new / safe[:, None]
                y = np.asarray(plan.ax_m1(lane_vals, x, counter=counter))
                lam_prev = lam
                lam = np.einsum("ij,ij->i", x, y, dtype=np.float64)
                counter.add_flops(2 * x.shape[0] * n)
                bad_lam = live & ~dead & ~np.isfinite(lam)
                if bad_lam.any():
                    gids = idx[bad_lam]
                    out_lam[gids] = lam_prev[bad_lam]
                    out_x[gids] = x[bad_lam]
                    out_failed[gids] = True
                    out_iters[gids] = sweeps
                    out_alpha[gids] = alpha_lane[bad_lam]
                    dead = dead | bad_lam
                delta = lam - lam_prev
                just_conv = live & ~dead & (np.abs(delta) < tol)

                if osc_adaptive:
                    upd = live & ~dead
                    flip = upd & (delta * prev_delta < 0) & (np.abs(delta) >= tol)
                    osc[flip] += 1
                    osc[upd & ~flip] = 0
                    prev_delta = np.where(upd, delta, prev_delta)
                    esc = osc >= _OSC_WINDOW
                    if esc.any():
                        target = np.where(
                            alpha_lane[esc] < 0, -1.0, 1.0
                        ) * bounds[tensor_of[esc]]
                        alpha_lane[esc] = 0.5 * (alpha_lane[esc] + target)
                        osc[esc] = 0
                        any_neg = bool((alpha_lane < 0).any())

                if tel is not None:
                    upd_tel = live & ~dead
                    if upd_tel.any():
                        resid_now = np.linalg.norm(
                            y - lam[:, None] * x, axis=-1)[upd_tel]
                        step_now = np.linalg.norm(
                            x - x_prev, axis=-1)[upd_tel]
                        tel.append(
                            sweeps, float(lam[upd_tel].mean()),
                            residual=float(resid_now.max()),
                            shift=float(alpha_lane[upd_tel].mean()),
                            step_norm=float(step_now.mean()),
                            active=int(upd_tel.sum()),
                        )

                if just_conv.any():
                    write_back(just_conv, converged=True, failed=False)
                retired = just_conv | dead
                if retired.any():
                    guard.retire(sweeps, int(just_conv.sum()), int(dead.sum()))
                    live &= ~retired
                    _emit("retire", converged=int(just_conv.sum()),
                          failed=int(dead.sum()), active=int(live.sum()),
                          sweep=sweeps)
                    try:
                        guard.check_collapse(
                            sweeps, telemetry=tel,
                            details={"lanes": L, "sweep": sweeps})
                    except Exception:
                        _emit("guard_trip", reason="collapse", sweep=sweeps)
                        raise

                if sweeps % compact_every == 0 and not live.all():
                    with _span("compact"):
                        idx = idx[live]
                        tensor_of = tensor_of[live]
                        x = x[live]
                        y = y[live]
                        lam = lam[live]
                        alpha_lane = alpha_lane[live]
                        lane_vals = values[tensor_of]
                        if osc_adaptive:
                            prev_delta = prev_delta[live]
                            osc = osc[live]
                        live = np.ones(idx.shape[0], dtype=bool)
                    compactions += 1
                    observe_fleet_compaction(idx.shape[0], L)
                    _emit("compact", active=int(idx.shape[0]), total=L,
                          sweep=sweeps)

        # lanes that ran out of iterations: record their current state
        if live.any():
            write_back(live, converged=False, failed=False)

        with _span("residuals"):
            full_vals = values[np.arange(L) // V]
            y_all = np.asarray(plan.ax_m1(full_vals, out_x, counter=counter))
            residuals = np.linalg.norm(
                y_all - out_lam[:, None] * out_x, axis=-1
            )
            out_conv &= np.isfinite(residuals)
            out_failed |= ~np.isfinite(out_lam) | ~np.isfinite(residuals)

    elapsed = time.perf_counter() - t0
    if tel is not None:
        finite = residuals[np.isfinite(residuals)]
        tel.append(
            sweeps, float(np.nanmean(out_lam)) if L else float("nan"),
            residual=float(finite.max()) if finite.size else float("nan"),
            shift=float(out_alpha.mean()) if L else alpha,
            active=int(live.sum()),
            force=True,
        )
        if recorder is not None:
            recorder.add_telemetry(tel)
    observe_solver_run(
        "fleet_solve", elapsed,
        out_iters.reshape(T, V), int(out_conv.sum()), L,
    )
    return FleetResult(
        eigenvalues=out_lam.reshape(T, V),
        eigenvectors=out_x.reshape(T, V, n),
        converged=out_conv.reshape(T, V),
        iterations=out_iters.reshape(T, V),
        sweeps=sweeps,
        failed=out_failed.reshape(T, V),
        shifts=out_alpha.reshape(T, V),
        telemetry=tel,
        variant=plan.variant,
        compactions=compactions,
        stopped=was_stopped,
        tensors=tensors,
    )
