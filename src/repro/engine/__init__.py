"""Fleet solve engine: whole-workload batched SS-HOPM scheduling.

One flat pool of (tensor, start) *lanes* advanced in lockstep through
plan-cached batched kernels, with immediate retirement of converged and
dead lanes and periodic active-set compaction.  See
:func:`repro.engine.fleet.fleet_solve` and ``docs/api.md``.
"""

from repro.engine.fleet import FleetWorkspace, fleet_solve, suggested_shifts

__all__ = ["FleetWorkspace", "fleet_solve", "suggested_shifts"]
