"""SIMT divergence ablation — convergence variance costs warp cycles.

The paper's mapping runs one SS-HOPM instance per thread; threads in a
warp execute in lockstep, so a warp is busy until its slowest lane
converges.  Using the *measured* per-(tensor, start) iteration counts from
the phantom workload, this bench quantifies the SIMT efficiency loss and
its effect on the modeled GPU runtime — detail the paper's aggregate
numbers fold in implicitly.
"""

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.core.multistart import multistart_sshopm
from repro.gpu.perfmodel import predict_sshopm
from repro.gpu.warps import divergence_adjusted_iterations, warp_profile


@pytest.mark.benchmark(group="warp-divergence")
def test_warp_divergence_report(benchmark, paper_workload):
    phantom, starts = paper_workload

    def build():
        res = multistart_sshopm(
            phantom.tensors, starts=starts, alpha=0.0, tol=1e-6, max_iters=200,
            dtype=np.float32,
        )
        iters = np.maximum(res.iterations, 1)
        prof = warp_profile(iters, warp_size=32)
        mean_based = predict_sshopm(
            num_tensors=len(phantom.tensors),
            iterations=float(iters.mean()),
        )
        warp_based = predict_sshopm(
            num_tensors=len(phantom.tensors),
            iterations=divergence_adjusted_iterations(iters),
        )
        return prof, mean_based, warp_based

    prof, mean_based, warp_based = benchmark.pedantic(build, rounds=1, iterations=1)

    assert 0.0 < prof.simt_efficiency <= 1.0
    # divergence can only slow the launch down relative to the lane mean
    assert warp_based.seconds >= mean_based.seconds * 0.999
    slowdown = warp_based.seconds / mean_based.seconds
    # the slowdown roughly tracks the inverse SIMT efficiency (wave
    # quantization and per-block tails add a little on top)
    assert slowdown < 1.2 / prof.simt_efficiency

    rows = [
        ["mean iterations / lane", f"{prof.mean_iterations:.1f}"],
        ["max iterations / lane", prof.max_iterations],
        ["SIMT warp efficiency", f"{prof.simt_efficiency:.3f}"],
        ["modeled ms (lane-mean iterations)", f"{mean_based.seconds * 1e3:.3f}"],
        ["modeled ms (warp-accurate)", f"{warp_based.seconds * 1e3:.3f}"],
        ["divergence slowdown", f"{slowdown:.3f}x"],
    ]
    report(
        "warp_divergence",
        format_table(
            "SIMT divergence on the phantom workload (measured iteration "
            "counts, 1024 blocks x 128 lanes, warp size 32)",
            ["metric", "value"],
            rows,
        ),
    )
