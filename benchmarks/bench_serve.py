"""Serve-plane latency budgets (``make serve-check``).

The daemon's control plane must stay cheap relative to the solves it
fronts.  Three budgets, each generous enough to be robust on loaded CI
hosts yet tight enough to catch an accidental sleep, lock convoy, or
O(queue) scan on the hot path:

* **admission** — an admit + a structured rejection are lock-bounded
  bookkeeping, budgeted in microseconds (amortized);
* **HTTP overhead** — a ``/solve?wait=1`` round trip over loopback vs
  running the identical job directly must cost well under a second of
  extra wall time (it is JSON + one queue handoff, not a solve);
* **drain** — with no work in flight, SIGTERM-equivalent drain must
  complete promptly (the runner threads park on a 0.2 s poll).
"""

import json
import time
import urllib.request

from benchmarks.conftest import format_table, report
from repro.serve import (
    AdmissionError,
    AdmissionQueue,
    EigenServer,
    ServeConfig,
    run_job,
)
from repro.serve.jobs import Job, JobSpec

SPEC = {"tensors": {"kind": "random", "count": 4, "m": 3, "n": 4, "seed": 5},
        "num_starts": 4, "seed": 1, "max_iters": 100, "chunk": 4}

ADMISSION_BUDGET = 200e-6   # seconds per admit/reject pair, amortized
HTTP_OVERHEAD_BUDGET = 0.75  # seconds of non-solve wall time per request
DRAIN_BUDGET = 3.0          # seconds for an idle drain


def _bench_admission(reps: int = 2_000) -> float:
    q = AdmissionQueue(1)
    t0 = time.perf_counter()
    for i in range(reps):
        q.submit(i)
        try:
            q.submit(i)  # always rejected: the queue holds one item
        except AdmissionError:
            pass
        q.take(timeout=0)
    return (time.perf_counter() - t0) / reps


def _bench_http_overhead(tmp_dir) -> tuple[float, float]:
    spec = JobSpec.from_doc(json.loads(json.dumps(SPEC)))
    run_job(Job("warm", spec))  # warm plan caches out of the measurement
    t0 = time.perf_counter()
    run_job(Job("direct", spec))
    direct = time.perf_counter() - t0

    srv = EigenServer(ServeConfig(port=0, runners=1,
                                  checkpoint_dir=tmp_dir))
    host, port = srv.start()
    try:
        req = urllib.request.Request(
            f"http://{host}:{port}/solve?wait=1",
            data=json.dumps(SPEC).encode(), method="POST",
            headers={"Content-Type": "application/json"})
        t0 = time.perf_counter()
        with urllib.request.urlopen(req, timeout=60) as resp:
            doc = json.load(resp)
        served = time.perf_counter() - t0
        assert doc["status"] == "done"
    finally:
        srv.drain()
    return direct, served


def _bench_idle_drain(tmp_dir) -> float:
    srv = EigenServer(ServeConfig(port=0, runners=2,
                                  checkpoint_dir=tmp_dir))
    srv.start()
    t0 = time.perf_counter()
    srv.drain()
    return time.perf_counter() - t0


def test_serve_control_plane_budgets(tmp_path):
    admit = _bench_admission()
    direct, served = _bench_http_overhead(tmp_path / "a")
    overhead = max(served - direct, 0.0)
    drain = _bench_idle_drain(tmp_path / "b")

    rows = [
        ["admit+reject (amortized)", f"{admit * 1e6:8.1f} us",
         f"{ADMISSION_BUDGET * 1e6:8.1f} us"],
        ["HTTP /solve overhead", f"{overhead * 1e3:8.1f} ms",
         f"{HTTP_OVERHEAD_BUDGET * 1e3:8.1f} ms"],
        ["idle drain", f"{drain * 1e3:8.1f} ms",
         f"{DRAIN_BUDGET * 1e3:8.1f} ms"],
    ]
    report("serve_overhead",
           format_table("repro serve control-plane budgets",
                        ["path", "measured", "budget"], rows))

    assert admit < ADMISSION_BUDGET, (
        f"admission path costs {admit * 1e6:.1f} us/pair "
        f"(budget {ADMISSION_BUDGET * 1e6:.0f} us)")
    assert overhead < HTTP_OVERHEAD_BUDGET, (
        f"HTTP round trip adds {overhead:.3f} s over the direct solve "
        f"(budget {HTTP_OVERHEAD_BUDGET} s)")
    assert drain < DRAIN_BUDGET, (
        f"idle drain took {drain:.2f} s (budget {DRAIN_BUDGET} s)")
