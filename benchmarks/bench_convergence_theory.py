"""Convergence-theory bench — predicted vs measured rates across shifts.

Quantifies Section V-A's "tradeoff between guarantees of convergence and
time-to-completion" from first principles: for the principal eigenpair of
application-sized tensors, the linearized multiplier
``rho(alpha) = max_i |mu_i + alpha| / |lambda + alpha|`` predicts both the
iteration counts and their growth with the shift.  The bench checks the
prediction against measured SS-HOPM runs.
"""

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.core.sshopm import sshopm, suggested_shift
from repro.core.solve import find_eigenpairs
from repro.core.theory import analyze_fixed_point, estimate_rate, minimal_attracting_shift
from repro.symtensor.random import random_symmetric_tensor
from repro.util.rng import random_unit_vector


@pytest.mark.benchmark(group="theory-report")
def test_rate_prediction_sweep(benchmark):
    tensor = random_symmetric_tensor(4, 3, rng=77)
    pairs = find_eigenpairs(tensor, num_starts=128, alpha=suggested_shift(tensor),
                            rng=78, tol=1e-14, max_iters=6000)
    principal = pairs[0]
    a_min = minimal_attracting_shift(tensor, principal.eigenvalue,
                                     principal.eigenvector)
    conservative = suggested_shift(tensor)
    shifts = [a_min + 0.5, 2.0 * a_min + 1.0, conservative / 4, conservative]

    def build():
        rows = []
        for alpha in shifts:
            ana = analyze_fixed_point(tensor, principal.eigenvalue,
                                      principal.eigenvector, alpha)
            x0 = principal.eigenvector + 0.05 * random_unit_vector(3, rng=79)
            res = sshopm(tensor, x0=x0, alpha=alpha, tol=1e-14, max_iters=50000)
            measured = estimate_rate(res.lambda_history)
            rows.append([
                f"{alpha:9.3f}",
                f"{ana.rate:7.4f}",
                f"{ana.rate**2:7.4f}",
                f"{measured:7.4f}" if np.isfinite(measured) else "n/a",
                res.iterations,
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    # predicted lambda-rate (rho^2) matches measurement where defined
    for row in rows:
        if row[3] != "n/a":
            assert abs(float(row[2]) - float(row[3])) < 0.08, row
    # iteration counts grow with the shift (the Section V-A tradeoff)
    iters = [row[4] for row in rows]
    assert iters[-1] > iters[0]

    report(
        "convergence_theory",
        format_table(
            "Shift vs convergence rate at the principal eigenpair "
            "(m=4, n=3; predicted multiplier rho, lambda-rate rho^2, "
            "measured lambda-rate, iterations to |dlambda| < 1e-14)",
            ["alpha", "rho", "rho^2", "measured", "iters"],
            rows,
        ),
    )
