"""Thin wrapper so the smoke harness is runnable from the benchmarks dir.

Delegates to :mod:`repro.bench.harness`; see that module (or
``repro bench-smoke --help``) for options.
"""

from repro.bench.harness import main

if __name__ == "__main__":
    raise SystemExit(main())
