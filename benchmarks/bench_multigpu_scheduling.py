"""Multi-GPU scheduling bench — the Section V-B generalization, quantified.

The paper notes the block-per-tensor mapping "generalizes to a system with
multiple GPUs"; this bench compares scheduling policies on homogeneous and
heterogeneous device sets, with uniform and measured (convergence-derived)
per-tensor work.
"""

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.gpu.cluster import predict_cluster
from repro.gpu.device import GTX_480, TESLA_C1060, TESLA_C2050

HOMO = [TESLA_C2050] * 4
HETERO = [TESLA_C2050, TESLA_C2050, TESLA_C1060, GTX_480]


@pytest.mark.benchmark(group="multigpu-report")
def test_scheduling_policy_report(benchmark, measured_iterations):
    _, per_tensor = measured_iterations
    iters = np.maximum(per_tensor, 1.0)

    def build():
        rows = []
        results = {}
        for label, devices in [("4x C2050", HOMO), ("2x C2050 + C1060 + GTX480", HETERO)]:
            for policy in ("equal", "peak", "dynamic"):
                p = predict_cluster(devices=devices, policy=policy,
                                    num_tensors=1024, iterations=iters)
                results[(label, policy)] = p
                rows.append([
                    label, policy, f"{p.seconds * 1e3:8.3f}",
                    f"{p.gflops:9.1f}", f"{p.efficiency:6.2f}",
                    "/".join(str(b) for b in p.device_blocks),
                ])
        return rows, results

    rows, results = benchmark.pedantic(build, rounds=1, iterations=1)

    # policy ordering on the heterogeneous set with real (varying) work
    label = "2x C2050 + C1060 + GTX480"
    assert results[(label, "peak")].seconds <= results[(label, "equal")].seconds
    assert results[(label, "dynamic")].seconds <= results[(label, "peak")].seconds * 1.05
    # homogeneous: equal == peak
    assert np.isclose(
        results[("4x C2050", "equal")].seconds,
        results[("4x C2050", "peak")].seconds,
        rtol=1e-6,
    )

    report(
        "multigpu_scheduling",
        format_table(
            "Section V-B generalization: scheduling 1024 blocks across "
            "device sets (iterations measured on the phantom workload)",
            ["devices", "policy", "ms", "GFLOPS", "eff", "blocks/device"],
            rows,
        ),
    )
