"""Disabled-instrumentation overhead budget.

The recorder hooks (``span`` / ``count`` / ``gauge``) are compiled into
the solver hot paths permanently; the contract is that with no recorder
active they cost (well) under 5% of solver runtime.  Measured robustly:
the per-call cost of a disabled hook (a thread-local read returning a
shared no-op object) times the number of hook sites a run actually
executes, compared against the run's wall time — this is insensitive to
the run-to-run noise that plagues naive A/B timing of sub-millisecond
deltas.

A direct A/B comparison (recorder off vs on) is reported for context,
along with the enabled-tracing cost.
"""

import time

import numpy as np

from benchmarks.conftest import format_table, report
from repro.core.multistart import multistart_sshopm
from repro.instrument import recording, span
from repro.instrument.recorder import _NULL_SPAN
from repro.symtensor.random import random_symmetric_batch

OVERHEAD_BUDGET = 0.05  # disabled hooks must stay under 5% of runtime


def _disabled_hook_cost(reps: int = 200_000) -> float:
    """Seconds per ``with span(...)`` round-trip with tracing disabled."""
    assert span("warmup") is _NULL_SPAN  # really measuring the no-op path
    t0 = time.perf_counter()
    for _ in range(reps):
        with span("x"):
            pass
    t_hook = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(reps):
        pass
    t_loop = time.perf_counter() - t0
    return max(t_hook - t_loop, 0.0) / reps


def _workload():
    batch = random_symmetric_batch(64, 4, 3, rng=3)
    return multistart_sshopm(batch, num_starts=32, alpha=0.0, tol=1e-8,
                             max_iters=120, rng=4)


def _hook_sites(rec) -> int:
    """Span entries + counter charges a traced run actually executed."""
    entries = sum(node.count for _, node in rec.root.walk())
    charges = sum(len(node.counters) for _, node in rec.root.walk())
    return entries + charges


def test_disabled_overhead_under_budget():
    _workload()  # warm numpy / kernel caches
    t0 = time.perf_counter()
    _workload()
    t_plain = time.perf_counter() - t0

    with recording() as rec:
        t0 = time.perf_counter()
        _workload()
        t_enabled = time.perf_counter() - t0

    per_hook = _disabled_hook_cost()
    hooks = _hook_sites(rec)
    est_overhead = per_hook * hooks
    frac = est_overhead / t_plain

    report(
        "instrument_overhead",
        format_table(
            "Instrumentation overhead (64 tensors x 32 starts, 120 sweeps)",
            ["quantity", "value"],
            [
                ["plain runtime", f"{t_plain * 1e3:.2f} ms"],
                ["runtime with recorder active", f"{t_enabled * 1e3:.2f} ms"],
                ["hook sites executed", hooks],
                ["disabled cost per hook", f"{per_hook * 1e9:.0f} ns"],
                ["estimated disabled overhead", f"{est_overhead * 1e6:.1f} us"],
                ["fraction of plain runtime", f"{frac:.4%}"],
                ["budget", f"{OVERHEAD_BUDGET:.0%}"],
            ],
        ),
    )
    assert frac < OVERHEAD_BUDGET, (
        f"disabled instrumentation overhead {frac:.2%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget ({hooks} hooks x {per_hook * 1e9:.0f} ns "
        f"vs {t_plain * 1e3:.1f} ms runtime)"
    )


def test_enabled_tracing_is_bounded():
    """Tracing on should cost well under 2x (it's a few dict ops per span
    against vectorized numpy kernels) — a regression tripwire, not a tight
    bound."""
    _workload()
    t0 = time.perf_counter()
    _workload()
    t_plain = time.perf_counter() - t0
    with recording():
        t0 = time.perf_counter()
        _workload()
        t_enabled = time.perf_counter() - t0
    assert t_enabled < max(2.0 * t_plain, t_plain + 0.05)
