"""Disabled-instrumentation overhead budget.

The recorder hooks (``span`` / ``count`` / ``gauge``) are compiled into
the solver hot paths permanently; the contract is that with no recorder
active they cost (well) under 5% of solver runtime.  Measured robustly:
the per-call cost of a disabled hook (a thread-local read returning a
shared no-op object) times the number of hook sites a run actually
executes, compared against the run's wall time — this is insensitive to
the run-to-run noise that plagues naive A/B timing of sub-millisecond
deltas.

A direct A/B comparison (recorder off vs on) is reported for context,
along with the enabled-tracing cost.
"""

import time

import numpy as np

from benchmarks.conftest import format_table, report
from repro.core.multistart import multistart_sshopm
from repro.instrument import recording, span
from repro.instrument.recorder import _NULL_SPAN
from repro.symtensor.random import random_symmetric_batch

OVERHEAD_BUDGET = 0.05  # disabled hooks must stay under 5% of runtime


def _disabled_hook_cost(reps: int = 200_000) -> float:
    """Seconds per ``with span(...)`` round-trip with tracing disabled."""
    assert span("warmup") is _NULL_SPAN  # really measuring the no-op path
    t0 = time.perf_counter()
    for _ in range(reps):
        with span("x"):
            pass
    t_hook = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(reps):
        pass
    t_loop = time.perf_counter() - t0
    return max(t_hook - t_loop, 0.0) / reps


def _workload():
    batch = random_symmetric_batch(64, 4, 3, rng=3)
    return multistart_sshopm(batch, num_starts=32, alpha=0.0, tol=1e-8,
                             max_iters=120, rng=4)


def _hook_sites(rec) -> int:
    """Span entries + counter charges a traced run actually executed."""
    entries = sum(node.count for _, node in rec.root.walk())
    charges = sum(len(node.counters) for _, node in rec.root.walk())
    return entries + charges


def test_disabled_overhead_under_budget():
    _workload()  # warm numpy / kernel caches
    t0 = time.perf_counter()
    _workload()
    t_plain = time.perf_counter() - t0

    with recording() as rec:
        t0 = time.perf_counter()
        _workload()
        t_enabled = time.perf_counter() - t0

    per_hook = _disabled_hook_cost()
    hooks = _hook_sites(rec)
    est_overhead = per_hook * hooks
    frac = est_overhead / t_plain

    report(
        "instrument_overhead",
        format_table(
            "Instrumentation overhead (64 tensors x 32 starts, 120 sweeps)",
            ["quantity", "value"],
            [
                ["plain runtime", f"{t_plain * 1e3:.2f} ms"],
                ["runtime with recorder active", f"{t_enabled * 1e3:.2f} ms"],
                ["hook sites executed", hooks],
                ["disabled cost per hook", f"{per_hook * 1e9:.0f} ns"],
                ["estimated disabled overhead", f"{est_overhead * 1e6:.1f} us"],
                ["fraction of plain runtime", f"{frac:.4%}"],
                ["budget", f"{OVERHEAD_BUDGET:.0%}"],
            ],
        ),
    )
    assert frac < OVERHEAD_BUDGET, (
        f"disabled instrumentation overhead {frac:.2%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget ({hooks} hooks x {per_hook * 1e9:.0f} ns "
        f"vs {t_plain * 1e3:.1f} ms runtime)"
    )


def _solver_metrics_cost(reps: int = 20_000) -> float:
    """Seconds per ``observe_solver_run`` call (the only metrics hook in the
    solver paths — once per run, never per iteration)."""
    from repro.instrument.metrics import observe_solver_run, use_registry

    with use_registry():
        observe_solver_run("warmup", 0.01, 5, 1, 1)  # build the families once
        t0 = time.perf_counter()
        for _ in range(reps):
            observe_solver_run("warmup", 0.01, 5, 1, 1)
        return (time.perf_counter() - t0) / reps


def test_metrics_emission_under_budget():
    """Solver metrics are emitted once per run, so the budget question is
    per-run cost vs run wall time — same methodology as the span hooks."""
    _workload()
    t0 = time.perf_counter()
    _workload()
    t_plain = time.perf_counter() - t0

    per_run = _solver_metrics_cost()
    frac = per_run / t_plain

    report(
        "metrics_overhead",
        format_table(
            "Solver metrics emission (one observe_solver_run per solve)",
            ["quantity", "value"],
            [
                ["plain runtime", f"{t_plain * 1e3:.2f} ms"],
                ["cost per emission", f"{per_run * 1e6:.2f} us"],
                ["fraction of plain runtime", f"{frac:.4%}"],
                ["budget", f"{OVERHEAD_BUDGET:.0%}"],
            ],
        ),
    )
    assert frac < OVERHEAD_BUDGET, (
        f"metrics emission {frac:.2%} of runtime exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )


def test_telemetry_disabled_path_under_budget():
    """With no recorder active telemetry defaults off; the residual cost is
    one ``telemetry_enabled`` check plus a skipped branch per sweep — it
    must not push a run past the instrumentation budget."""
    _workload()
    times_off = []
    for _ in range(3):
        t0 = time.perf_counter()
        _workload()  # telemetry=None, no recorder -> disabled
        times_off.append(time.perf_counter() - t0)
    t_off = min(times_off)

    # the gating check itself, amortized: it runs once per solve
    from repro.instrument.telemetry import telemetry_enabled

    reps = 100_000
    t0 = time.perf_counter()
    for _ in range(reps):
        telemetry_enabled(None, None)
    per_check = (time.perf_counter() - t0) / reps
    frac = per_check / t_off

    report(
        "telemetry_overhead",
        format_table(
            "Telemetry disabled path (gating check per solve)",
            ["quantity", "value"],
            [
                ["plain runtime (telemetry off)", f"{t_off * 1e3:.2f} ms"],
                ["gating check cost", f"{per_check * 1e9:.0f} ns"],
                ["fraction of plain runtime", f"{frac:.6%}"],
                ["budget", f"{OVERHEAD_BUDGET:.0%}"],
            ],
        ),
    )
    assert frac < OVERHEAD_BUDGET


def test_enabled_tracing_is_bounded():
    """Tracing on should cost well under 2x (it's a few dict ops per span
    against vectorized numpy kernels) — a regression tripwire, not a tight
    bound."""
    _workload()
    t0 = time.perf_counter()
    _workload()
    t_plain = time.perf_counter() - t0
    with recording():
        t0 = time.perf_counter()
        _workload()
        t_enabled = time.perf_counter() - t0
    assert t_enabled < max(2.0 * t_plain, t_plain + 0.05)
