"""Section V-D ablation — common subexpression elimination.

The paper mentions CSE as a further optimization of the unrolled kernels:
"This optimization would reduce the flop count but also introduce
dependencies in the unrolled instructions."  This bench quantifies both
sides: the static flop reduction across sizes (the benefit) and the
measured host wall-clock (where the dependency cost largely vanishes in
Python but the flop savings show).
"""

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.kernels.codegen import emit
from repro.symtensor.random import random_symmetric_tensor

SIZES = [(4, 3), (4, 5), (6, 3), (6, 5), (8, 3)]


@pytest.mark.benchmark(group="ablation-cse-report")
def test_report_static_flop_reduction(benchmark):
    def build():
        rows = []
        for m, n in SIZES:
            plain = emit(m, n, "unrolled", target="numpy")
            cse = emit(m, n, "unrolled_cse", target="numpy")
            rows.append([
                f"m={m} n={n}",
                plain.flops_scalar, cse.flops_scalar,
                f"{1 - cse.flops_scalar / plain.flops_scalar:6.1%}",
                plain.flops_vector, cse.flops_vector,
                f"{1 - cse.flops_vector / plain.flops_vector:6.1%}",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    for row in rows:
        assert float(row[3].strip("% ")) >= 0.0  # CSE never increases flops
    # savings grow with order (higher powers repeat more)
    assert float(rows[-1][3].strip("% ")) > float(rows[0][3].strip("% "))
    report(
        "ablation_cse",
        format_table(
            "Section V-D: CSE flop reduction in the unrolled kernels "
            "(static counts from codegen)",
            ["size", "Axm", "Axm+cse", "saved", "Axm1", "Axm1+cse", "saved"],
            rows,
        ),
    )


@pytest.mark.benchmark(group="ablation-cse-time")
@pytest.mark.parametrize("cse", [False, True], ids=["plain", "cse"])
@pytest.mark.parametrize("m,n", [(4, 3), (8, 3)])
def test_bench_cse_wallclock(benchmark, cse, m, n):
    tensor = random_symmetric_tensor(m, n, rng=0)
    x = np.random.default_rng(1).normal(size=n)
    gen = emit(m, n, "unrolled_cse" if cse else "unrolled", target="numpy")

    def run():
        gen.ax_m(tensor.values, x)
        gen.ax_m1(tensor.values, x)

    benchmark(run)
