"""Application benchmark — the full DW-MRI fiber-detection pipeline on the
1024-voxel phantom (the paper's Section IV/V workload, end to end).

Times each stage (acquisition synthesis + fit, eigen-solve, extraction) and
reports detection accuracy against ground truth — the paper's statement
that the synthetic set "yielded correct results" with alpha = 0, made
quantitative.
"""

import numpy as np
import pytest

from benchmarks.conftest import format_table, report, save_trace_report
from repro.core.multistart import multistart_sshopm
from repro.instrument import recording
from repro.mri.fibers import extract_fibers_batch
from repro.mri.metrics import evaluate_detection
from repro.mri.phantom import make_phantom


@pytest.mark.benchmark(group="mri-stages")
def test_bench_phantom_build(benchmark):
    """Acquisition synthesis + batched least-squares tensor fit."""
    benchmark.pedantic(
        lambda: make_phantom(rows=32, cols=32, num_gradients=24, rng=7),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="mri-stages")
def test_bench_eigensolve_stage(benchmark, paper_workload):
    """The SS-HOPM stage alone (what the paper offloads to the GPU)."""
    phantom, starts = paper_workload

    def run():
        return multistart_sshopm(phantom.tensors, starts=starts, alpha=0.0,
                                 tol=1e-6, max_iters=60, dtype=np.float32,
                                 backend="batched_unrolled")

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.converged.mean() > 0.9


@pytest.mark.benchmark(group="mri-report")
def test_full_pipeline_accuracy(benchmark):
    """End-to-end detection quality on a noisy paper-sized phantom.

    Runs under a recorder: the per-stage wall times and flop totals come
    from the instrumentation spans (persisted as a JSON trace alongside
    the text report) rather than ad-hoc ``perf_counter`` bracketing.
    """
    traced = {}

    def run():
        with recording(meta={"benchmark": "mri_pipeline"}) as rec:
            with rec.span("pipeline"):
                with rec.span("phantom_build"):
                    phantom = make_phantom(rows=16, cols=16, num_gradients=32,
                                           noise_sigma=0.02, rng=11)
                fibers = extract_fibers_batch(phantom.tensors, num_starts=64,
                                              rng=12)
                with rec.span("score"):
                    rep = evaluate_detection([f.directions for f in fibers],
                                             phantom.true_directions)
        traced["rec"] = rec
        return phantom, rep

    phantom, rep = benchmark.pedantic(run, rounds=1, iterations=1)
    rec = traced["rec"]
    save_trace_report("mri_pipeline_trace", rec)
    solve = rec.find("pipeline/extract_fibers_batch/multistart_sshopm")
    assert solve is not None and solve.total("flops") > 0
    assert rep.correct_count_fraction > 0.9
    assert rep.mean_angular_error_deg < 5.0

    rows = [
        ["voxels", rep.voxels],
        ["correct fiber-count fraction", f"{rep.correct_count_fraction:.3f}"],
        ["mean angular error (deg)", f"{rep.mean_angular_error_deg:.2f}"],
        ["matched fibers", rep.matched],
        ["false positives", rep.false_positives],
        ["missed fibers", rep.misses],
    ]
    for count, (vox, ok, err) in rep.by_fiber_count.items():
        rows.append([f"{count}-fiber voxels (n={vox})",
                     f"count-correct {ok}/{vox}, err {err:.2f} deg"])
    report(
        "mri_pipeline_accuracy",
        format_table(
            "DW-MRI pipeline (16x16 phantom, 2% noise, 64 starts, alpha=0):\n"
            "paper qualitative claim: 'alpha = 0 ... yielded correct results"
            " for the tensors in this synthetic set'",
            ["metric", "value"],
            rows,
        ),
    )
