"""Event-stream overhead budget and schema gate (``make events-check``).

The fleet emits events from its hot sites (retirements, compactions,
plan-cache lookups) through :func:`repro.instrument.events.emit`, which
with no spool active is one thread-local read returning ``False``.  Same
budget discipline as ``bench_instrument_overhead.py``: the per-call cost
of the disabled emit times the number of emit sites a run actually
executes must stay under 5% of the run's wall time — robust against the
run-to-run noise of naive A/B timing.

The second half is the integration gate: a small fleet run (process tier
when shared memory is available, thread tier otherwise) with events
enabled must produce a spool where every line validates against the
``repro-fleet-events/1`` schema, and the enabled stream must not blow up
the runtime either.
"""

import time

from benchmarks.conftest import format_table, report
from repro.engine.fleet import fleet_solve
from repro.instrument.events import (
    EventSpool,
    current_spool,
    emit,
    read_events,
    use_spool,
    validate_event,
)
from repro.symtensor.random import random_symmetric_batch

OVERHEAD_BUDGET = 0.05  # disabled emit sites must stay under 5% of runtime


def _disabled_emit_cost(reps: int = 200_000) -> float:
    """Seconds per ``emit(...)`` call with no spool active."""
    assert current_spool() is None
    assert emit("retire", converged=0, failed=0, active=1) is False
    t0 = time.perf_counter()
    for _ in range(reps):
        emit("retire", converged=0, failed=0, active=1)
    t_emit = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(reps):
        pass
    t_loop = time.perf_counter() - t0
    return max(t_emit - t_loop, 0.0) / reps


def _workload():
    # the fleet engine is where the hot emit sites live (retirements,
    # compactions, plan-cache lookups); compact often to exercise them
    batch = random_symmetric_batch(64, 4, 3, rng=3)
    return fleet_solve(batch, num_starts=32, alpha=0.0, tol=1e-8,
                       max_iters=120, rng=4, compact_every=10)


def _emit_sites(path) -> int:
    """Emit calls an identical run with a spool actually executed."""
    return len(read_events(path))


def test_disabled_emit_overhead_under_budget(tmp_path):
    _workload()  # warm numpy / kernel caches
    t0 = time.perf_counter()
    _workload()
    t_plain = time.perf_counter() - t0

    ev = tmp_path / "sites.jsonl"
    with EventSpool.open(ev, rate_cap=None) as spool, use_spool(spool):
        t0 = time.perf_counter()
        _workload()
        t_enabled = time.perf_counter() - t0

    per_emit = _disabled_emit_cost()
    sites = _emit_sites(ev)
    est_overhead = per_emit * sites
    frac = est_overhead / t_plain

    report(
        "events_overhead",
        format_table(
            "Event stream overhead (64 tensors x 32 starts, 120 sweeps)",
            ["quantity", "value"],
            [
                ["plain runtime", f"{t_plain * 1e3:.2f} ms"],
                ["runtime with spool active", f"{t_enabled * 1e3:.2f} ms"],
                ["emit sites executed", sites],
                ["disabled cost per emit", f"{per_emit * 1e9:.0f} ns"],
                ["estimated disabled overhead", f"{est_overhead * 1e6:.1f} us"],
                ["fraction of plain runtime", f"{frac:.4%}"],
                ["budget", f"{OVERHEAD_BUDGET:.0%}"],
            ],
        ),
    )
    assert frac < OVERHEAD_BUDGET, (
        f"disabled event-emit overhead {frac:.2%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget ({sites} sites x "
        f"{per_emit * 1e9:.0f} ns vs {t_plain * 1e3:.1f} ms runtime)"
    )


def test_fleet_events_validate_and_stay_cheap(tmp_path):
    """A real fleet run with events on: every line must validate, the
    stream must carry the full lifecycle, and the enabled cost must be
    bounded (loose 2x tripwire — the stream is a handful of lines per
    shard against vectorized numpy kernels)."""
    from repro.parallel.fleet import parallel_fleet_solve
    from repro.parallel.shm import SHM_AVAILABLE

    executor = "process" if SHM_AVAILABLE else "thread"
    batch = random_symmetric_batch(8, 4, 3, rng=7)

    def run(events=None):
        return parallel_fleet_solve(batch, workers=2, num_starts=8, rng=1,
                                    alpha=0.0, tol=1e-8, max_iters=120,
                                    executor=executor, events=events)

    run()  # warm workers / kernel caches
    t0 = time.perf_counter()
    run()
    t_plain = time.perf_counter() - t0

    ev = tmp_path / "fleet.jsonl"
    t0 = time.perf_counter()
    rep = run(events=str(ev))
    t_events = time.perf_counter() - t0
    assert rep.failed_shards == []

    records = read_events(ev)
    for rec in records:
        validate_event(rec)
    evs = {r["ev"] for r in records}
    assert {"header", "run_start", "shard_start", "shard_finish",
            "run_finish"} <= evs
    assert len({r["run"] for r in records}) == 1, "one run id per stream"

    report(
        "events_fleet_gate",
        format_table(
            f"Fleet event stream ({executor} tier, 8 tensors x 8 starts)",
            ["quantity", "value"],
            [
                ["event lines", len(records)],
                ["event types", len(evs)],
                ["runtime without events", f"{t_plain * 1e3:.2f} ms"],
                ["runtime with events", f"{t_events * 1e3:.2f} ms"],
            ],
        ),
    )
    assert t_events < max(2.0 * t_plain, t_plain + 0.25), (
        f"events-enabled fleet run took {t_events * 1e3:.1f} ms vs "
        f"{t_plain * 1e3:.1f} ms without — stream is too expensive"
    )
