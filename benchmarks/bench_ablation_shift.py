"""Shift-choice ablation — Section V-A's convergence/speed tradeoff.

The paper: "choosing an appropriate shift for real data will balance a
tradeoff between guarantees of convergence and time-to-completion", and
uses alpha = 0 for its synthetic set.  This bench quantifies that tradeoff
on the phantom workload: convergence rate and iteration counts for
alpha = 0, a moderate fixed shift, the conservative provable shift, and the
adaptive (GEAP-style) shift.
"""

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.core.adaptive import adaptive_sshopm
from repro.core.multistart import multistart_sshopm
from repro.core.sshopm import suggested_shift
from repro.mri.phantom import make_phantom


@pytest.mark.benchmark(group="ablation-shift-report")
def test_shift_tradeoff(benchmark):
    phantom = make_phantom(rows=8, cols=8, num_gradients=24, rng=21)
    tensors = phantom.tensors
    conservative = float(np.median([suggested_shift(tensors[t]) for t in range(len(tensors))]))

    def run_config(alpha):
        res = multistart_sshopm(tensors, num_starts=32, alpha=alpha, rng=22,
                                tol=1e-10, max_iters=2000)
        conv = res.converged.mean()
        iters = res.iterations[res.converged].mean() if res.converged.any() else np.nan
        return conv, iters

    def build():
        rows = []
        for label, alpha in [
            ("alpha = 0 (paper)", 0.0),
            ("alpha = 1 (moderate)", 1.0),
            (f"alpha = {conservative:.1f} (provable)", conservative),
        ]:
            conv, iters = run_config(alpha)
            rows.append([label, f"{conv:7.1%}", f"{iters:8.1f}"])
        # adaptive shift, sequential per (tensor, start) on a subsample
        iters_list, conv_count, total = [], 0, 0
        for t in range(0, len(tensors), 8):
            for seed in range(4):
                r = adaptive_sshopm(tensors[t], rng=1000 + seed, tol=1e-10,
                                    max_iters=2000)
                total += 1
                if r.converged:
                    conv_count += 1
                    iters_list.append(r.iterations)
        rows.append(["adaptive (GEAP-style)", f"{conv_count / total:7.1%}",
                     f"{np.mean(iters_list):8.1f}"])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    # the provable shift converges everywhere but slowly; adaptive converges
    # everywhere and much faster
    conservative_conv = float(rows[2][1].strip("% "))
    conservative_iters = float(rows[2][2])
    adaptive_conv = float(rows[3][1].strip("% "))
    adaptive_iters = float(rows[3][2])
    # (the conservative shift is provably convergent but so slow that a few
    # lanes may still be short of tol at the iteration cap — that slowness
    # is precisely the tradeoff being measured)
    assert conservative_conv >= 95.0
    assert adaptive_conv >= 99.0
    assert adaptive_iters < conservative_iters

    report(
        "ablation_shift",
        format_table(
            "Section V-A tradeoff: shift choice vs convergence and speed\n"
            "(64 phantom tensors x 32 starts; iterations among converged)",
            ["shift", "converged", "avg iters"],
            rows,
        ),
    )
