"""Shared infrastructure for the reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper.  Beyond
pytest-benchmark's own timing table, modules register formatted paper-style
report tables via :func:`report`; a terminal-summary hook prints them at the
end of the run (so ``pytest benchmarks/ --benchmark-only | tee ...``
captures the same rows/series the paper reports).  Reports are also written
to ``benchmarks/results/*.txt``.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_REPORTS: list[tuple[str, str]] = []


def report(name: str, text: str) -> None:
    """Register a paper-style report table for end-of-run printing and
    write it to ``benchmarks/results/<name>.txt``."""
    _REPORTS.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def save_trace_report(name: str, recorder) -> None:
    """Persist a :class:`repro.instrument.Recorder` next to the text
    reports: the JSON trace to ``results/<name>.trace.json`` and its span
    table through :func:`report`."""
    RESULTS_DIR.mkdir(exist_ok=True)
    recorder.save_trace(RESULTS_DIR / f"{name}.trace.json")
    report(name, recorder.report())


def format_table(title: str, headers: list[str], rows: list[list], widths=None) -> str:
    """Fixed-width text table."""
    if widths is None:
        widths = []
        for c, h in enumerate(headers):
            w = len(str(h))
            for r in rows:
                w = max(w, len(str(r[c])))
            widths.append(w + 2)
    lines = [title, "=" * len(title)]
    lines.append("".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("".join("-" * (w - 1) + " " for w in widths))
    for r in rows:
        lines.append("".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.section("paper reproduction reports")
    for name, text in _REPORTS:
        tr.write_line("")
        for line in text.splitlines():
            tr.write_line(line)
    tr.write_line("")
    tr.write_line(f"(also written to {RESULTS_DIR}/)")


@pytest.fixture(scope="session")
def paper_workload():
    """The paper's test workload: 1024 order-4 dim-3 tensors (synthetic
    phantom), 128 shared starting vectors, alpha = 0 (Section V-A)."""
    from repro.core.multistart import starting_vectors
    from repro.mri.phantom import make_phantom

    phantom = make_phantom(rows=32, cols=32, num_gradients=24, noise_sigma=0.01, rng=1024)
    starts = starting_vectors(128, 3, scheme="random", rng=2050)
    return phantom, starts


@pytest.fixture(scope="session")
def measured_iterations(paper_workload):
    """Average SS-HOPM iteration count on the paper workload (feeds the
    device models so modeled runtimes reflect the real convergence
    behaviour of the test set)."""
    from repro.core.multistart import multistart_sshopm

    phantom, starts = paper_workload
    res = multistart_sshopm(
        phantom.tensors, starts=starts, alpha=0.0, tol=1e-6, max_iters=200,
        dtype=np.float32,
    )
    per_tensor = res.iterations.mean(axis=1)
    return float(per_tensor.mean()), per_tensor
