"""Table II — storage and computational costs, general vs symmetric.

The paper's Table II gives the asymptotic costs; this bench regenerates it
with *measured* quantities: stored element counts and instrumented flop
counts of the actual kernels, across a sweep of (m, n), with the paper's
closed forms alongside.  Also times compressed-vs-dense kernels to show the
real-world effect of the flop savings.
"""

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.kernels.compressed import (
    ax_m1_compressed,
    ax_m_compressed,
    symmetric_flops_scalar,
    symmetric_flops_vector,
)
from repro.kernels.reference import ax_m1_dense, ax_m_dense, general_flops
from repro.symtensor.random import random_symmetric_tensor
from repro.util.combinatorics import factorial, num_total_entries, num_unique_entries
from repro.util.flopcount import FlopCounter

SWEEP = [(3, 3), (3, 6), (4, 3), (4, 6), (5, 4), (6, 3), (6, 5)]


def _measure_row(m, n):
    tensor = random_symmetric_tensor(m, n, rng=0)
    x = np.random.default_rng(1).normal(size=n)
    c0, c1, d0, d1 = (FlopCounter() for _ in range(4))
    dense = tensor.to_dense()
    y = ax_m_compressed(tensor, x, counter=c0)
    v = ax_m1_compressed(tensor, x, counter=c1)
    yd = ax_m_dense(dense, x, counter=d0)
    vd = ax_m1_dense(dense, x, counter=d1)
    assert np.isclose(y, yd) and np.allclose(v, vd)
    return {
        "storage_general": num_total_entries(m, n),
        "storage_symmetric": num_unique_entries(m, n),
        "flops_general_scalar": d0.flops,
        "flops_symmetric_scalar": c0.flops,
        "flops_general_vector": d1.flops,
        "flops_symmetric_vector": c1.flops,
    }


@pytest.mark.benchmark(group="table2-report")
def test_regenerate_table2(benchmark):
    rows = []
    for m, n in SWEEP:
        r = benchmark.pedantic(_measure_row, args=(m, n), rounds=1, iterations=1) if (
            (m, n) == SWEEP[0]
        ) else _measure_row(m, n)
        storage_ratio = r["storage_general"] / r["storage_symmetric"]
        flop_ratio = r["flops_general_scalar"] / r["flops_symmetric_scalar"]
        rows.append(
            [
                f"m={m} n={n}",
                r["storage_general"],
                r["storage_symmetric"],
                f"{storage_ratio:.1f}x (m!={factorial(m)})",
                r["flops_general_scalar"],
                r["flops_symmetric_scalar"],
                r["flops_general_vector"],
                r["flops_symmetric_vector"],
                f"{flop_ratio:.1f}x",
            ]
        )
        # sanity against the closed forms
        assert r["flops_symmetric_scalar"] == symmetric_flops_scalar(m, n)
        assert r["flops_symmetric_vector"] == symmetric_flops_vector(m, n)
        assert r["flops_general_scalar"] >= general_flops(m, n)
    report(
        "table2_costs",
        format_table(
            "Table II (measured): storage & flops, general vs symmetric\n"
            "(paper: storage n^m vs n^m/m!+O(n^{m-1}); Ax^m flops 2n^m vs "
            "O(n^m/(m-1)!); Ax^{m-1} flops 2n^m vs O(m n^m/(m-1)!))",
            ["size", "st.gen", "st.sym", "st.ratio",
             "Axm.gen", "Axm.sym", "Axm1.gen", "Axm1.sym", "flop.ratio"],
            rows,
        ),
    )


@pytest.mark.benchmark(group="table2-kernels-scalar")
@pytest.mark.parametrize("variant", ["dense", "compressed", "precomputed", "vectorized"])
def test_bench_scalar_kernel_m4n6(benchmark, variant):
    """Wall-clock effect of the Table II flop savings on A x^m (m=4, n=6)."""
    tensor = random_symmetric_tensor(4, 6, rng=2)
    x = np.random.default_rng(3).normal(size=6)
    if variant == "dense":
        dense = tensor.to_dense()
        benchmark(ax_m_dense, dense, x)
    elif variant == "compressed":
        benchmark(ax_m_compressed, tensor, x)
    elif variant == "precomputed":
        from repro.kernels.precomputed import ax_m_precomputed

        benchmark(ax_m_precomputed, tensor, x)
    else:
        from repro.kernels.batched import ax_m_batched
        from repro.kernels.tables import kernel_tables

        tab = kernel_tables(4, 6)
        benchmark(ax_m_batched, tensor.values, x, tab)


@pytest.mark.benchmark(group="table2-kernels-vector")
@pytest.mark.parametrize("variant", ["dense", "compressed", "vectorized"])
def test_bench_vector_kernel_m4n6(benchmark, variant):
    tensor = random_symmetric_tensor(4, 6, rng=4)
    x = np.random.default_rng(5).normal(size=6)
    if variant == "dense":
        dense = tensor.to_dense()
        benchmark(ax_m1_dense, dense, x)
    elif variant == "compressed":
        benchmark(ax_m1_compressed, tensor, x)
    else:
        from repro.kernels.batched import ax_m1_batched
        from repro.kernels.tables import kernel_tables

        tab = kernel_tables(4, 6)
        benchmark(ax_m1_batched, tensor.values, x, tab)
