"""Section V-E ablation — occupancy-driven falloff for larger tensors.

The paper: "We observe decreased performance for tensor sizes past a
threshold of around order 4 and dimension 5" because per-thread registers
and per-block shared memory grow with tensor size, reducing occupancy.
This bench sweeps (m, n), reports blocks/SM, limiting resource, and modeled
fraction of peak, and asserts the threshold location.  It also reports the
paper's multi-GPU note (Section V-B) as a projection.
"""

import pytest

from benchmarks.conftest import format_table, report
from repro.gpu.device import GTX_480, TESLA_C1060, TESLA_C2050
from repro.gpu.kernelspec import sshopm_launch
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.perfmodel import predict_sshopm

SWEEP = [(4, 3), (4, 4), (4, 5), (4, 6), (4, 7), (6, 3), (6, 4), (6, 5), (8, 3), (8, 4)]


@pytest.mark.benchmark(group="occupancy-report")
def test_occupancy_falloff_sweep(benchmark):
    def build():
        rows = []
        fractions = {}
        for m, n in SWEEP:
            launch = sshopm_launch(m, n, num_starts=128, variant="unrolled")
            occ = compute_occupancy(TESLA_C2050, launch)
            pred = predict_sshopm(m=m, n=n, num_tensors=1024, num_starts=128,
                                  iterations=40.0, variant="unrolled")
            fractions[(m, n)] = pred.fraction_of_peak
            rows.append([
                f"m={m} n={n}",
                launch.registers_per_thread,
                launch.shared_mem_per_block,
                occ.blocks_per_sm,
                occ.limiting_factor,
                occ.spilled_registers,
                f"{pred.gflops:8.1f}",
                f"{pred.fraction_of_peak:6.1%}",
            ])
        return rows, fractions

    rows, fractions = benchmark.pedantic(build, rounds=1, iterations=1)

    # the paper's threshold: healthy through (4,5), degraded past it
    assert fractions[(4, 5)] > 0.8 * fractions[(4, 3)]
    assert fractions[(4, 6)] < 0.8 * fractions[(4, 3)]
    assert fractions[(6, 5)] < 0.8 * fractions[(4, 3)]
    report(
        "occupancy_falloff",
        format_table(
            "Section V-E (modeled): occupancy falloff past ~order 4 / "
            "dimension 5 (Tesla C2050, V=128, unrolled)",
            ["size", "regs/thr", "smem/blk", "blk/SM", "limit", "spill",
             "GFLOPS", "frac-peak"],
            rows,
        ),
    )


@pytest.mark.benchmark(group="occupancy-report")
def test_other_devices_and_multigpu(benchmark):
    """Section V-E: 'similar performance (relative to peak) ... on two other
    NVIDIA GPUs'; Section V-B: 'this approach generalizes to a system with
    multiple GPUs'."""

    def build():
        rows = []
        for dev in (TESLA_C2050, TESLA_C1060, GTX_480):
            p = predict_sshopm(device=dev, iterations=40.0)
            rows.append([dev.name, f"{p.gflops:8.1f}", f"{p.fraction_of_peak:6.1%}", 1])
        for d in (2, 4):
            p = predict_sshopm(iterations=40.0, num_devices=d)
            rows.append([f"{TESLA_C2050.name} x{d}", f"{p.gflops:8.1f}",
                         f"{p.fraction_of_peak:6.1%}", d])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    fracs = [float(r[2].strip("%")) for r in rows[:3]]
    assert max(fracs) - min(fracs) < 10.0  # similar relative performance
    report(
        "other_devices_multigpu",
        format_table(
            "Other devices & multi-GPU projection (m=4, n=3, T=1024, V=128)",
            ["device", "GFLOPS", "frac-peak", "count"],
            rows,
        ),
    )
