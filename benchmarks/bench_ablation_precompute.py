"""Section III-B.5 ablation — the storage/compute tradeoff.

The paper: precomputing index arrays and multinomial coefficients reduces
both kernels' flop complexity to ``n^m/(m-1)! + O(n^{m-2})`` at the price of
``(m+2)x`` extra integer storage (shareable across same-shaped tensors).
This bench measures both sides: wall-clock of recompute-vs-precompute
kernels across sizes, and the storage overhead of the tables.
"""

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.kernels.compressed import ax_m1_compressed, ax_m_compressed
from repro.kernels.precomputed import ax_m1_precomputed, ax_m_precomputed
from repro.kernels.tables import kernel_tables
from repro.symtensor.random import random_symmetric_tensor
from repro.util.combinatorics import num_unique_entries

SIZES = [(4, 3), (4, 6), (6, 4)]


@pytest.mark.benchmark(group="ablation-precompute-scalar")
@pytest.mark.parametrize("mode", ["recompute", "precompute"])
@pytest.mark.parametrize("m,n", SIZES)
def test_bench_scalar(benchmark, mode, m, n):
    tensor = random_symmetric_tensor(m, n, rng=0)
    x = np.random.default_rng(1).normal(size=n)
    fn = ax_m_compressed if mode == "recompute" else ax_m_precomputed
    fn(tensor, x)  # warm the table caches outside the timing loop
    benchmark(fn, tensor, x)


@pytest.mark.benchmark(group="ablation-precompute-vector")
@pytest.mark.parametrize("mode", ["recompute", "precompute"])
@pytest.mark.parametrize("m,n", SIZES)
def test_bench_vector(benchmark, mode, m, n):
    tensor = random_symmetric_tensor(m, n, rng=2)
    x = np.random.default_rng(3).normal(size=n)
    fn = ax_m1_compressed if mode == "recompute" else ax_m1_precomputed
    fn(tensor, x)
    benchmark(fn, tensor, x)


@pytest.mark.benchmark(group="ablation-precompute-report")
def test_report_storage_overhead(benchmark):
    def build():
        rows = []
        for m, n in [(4, 3), (4, 6), (6, 4), (6, 6), (8, 3)]:
            tab = kernel_tables(m, n)
            U = num_unique_entries(m, n)
            extra = tab.extra_storage_elements()
            rows.append([
                f"m={m} n={n}", U, extra, f"{extra / U:.1f}x",
                f"(paper: ~{m + 2}x shareable ints)",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    for (m, n), row in zip([(4, 3), (4, 6), (6, 4), (6, 6), (8, 3)], rows):
        ratio = float(row[3].rstrip("x"))
        # index (m) + mult (1) tables alone are (m+1)x; the row expansion
        # adds at most (m+2) ints per (class, distinct index) pair with at
        # most min(m, n) distinct indices per class — overhead stays O(m)
        assert m + 1 <= ratio <= (m + 1) + (m + 2) * min(m, n)
    report(
        "ablation_precompute_storage",
        format_table(
            "Section III-B.5: integer storage overhead of precomputed "
            "tables (values stored once per (m, n), shared by all tensors)",
            ["size", "U (values)", "extra ints", "overhead", "note"],
            rows,
        ),
    )
