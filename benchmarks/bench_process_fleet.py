"""Process executor vs. thread executor on the fleet target workload.

The thread tier shards the fleet but serializes numpy dispatch on the
GIL; the process tier (``executor="process"``) runs one OS process per
worker over a zero-copy shared-memory tensor store
(:mod:`repro.parallel.shm`), moving only shard descriptors and
completion metadata through pipes.  This bench pins two claims on the
target workload (64 tensors in R^[4,6], 32 shared starts):

* **speedup floor** — the process executor is at least 2x faster than
  the thread executor (asserted only on hosts with >= 2 usable cores;
  process workers timesharing a single core measure scheduler overhead,
  not the executor);
* **O(result) serialization** — per-shard inter-process payload excludes
  tensor data, verified unconditionally against the instrumented
  ``repro_shm_bytes_published_total`` /
  ``repro_fleet_ipc_payload_bytes_total`` counters and cross-checked
  with the :mod:`repro.parallel.comm` cost model's prediction.

Run via ``make fleet-bench`` (skips cleanly where
``multiprocessing.shared_memory`` is unavailable).
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.instrument.metrics import use_registry
from repro.parallel.comm import estimate_fleet_comm
from repro.parallel.fleet import parallel_fleet_solve
from repro.parallel.shm import SHM_AVAILABLE
from repro.symtensor import random_symmetric_batch
from repro.util.rng import make_rng

pytestmark = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="multiprocessing.shared_memory unavailable")

T, M, N, V = 64, 4, 6, 32
ALPHA, TOL, MAX_ITERS = 6.0, 1e-8, 300
WORKERS = min(4, os.cpu_count() or 1)
TARGET_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def workload():
    batch = random_symmetric_batch(T, M, N, rng=0)
    rng = make_rng(1)
    starts = rng.standard_normal((V, N))
    starts /= np.linalg.norm(starts, axis=1, keepdims=True)
    return batch, starts


def _series_total(reg, name):
    for m in reg.snapshot()["metrics"]:
        if m["name"] == name:
            return sum(s.get("value", 0.0) for s in m["series"])
    return 0.0


@pytest.mark.benchmark(group="process-fleet")
def test_report_process_vs_thread(benchmark, workload):
    batch, starts = workload
    workers = max(2, WORKERS)

    def solve(executor):
        return parallel_fleet_solve(
            batch, workers=workers, starts=starts, alpha=ALPHA, tol=TOL,
            max_iters=MAX_ITERS, executor=executor)

    def run():
        solve("thread")  # warm: plan cache, codegen, allocator
        t0 = time.perf_counter()
        thread_rep = solve("thread")
        t_thread = time.perf_counter() - t0

        solve("process")  # warm: worker spawn path, shm plumbing
        with use_registry() as reg:
            t0 = time.perf_counter()
            proc_rep = solve("process")
            t_process = time.perf_counter() - t0
        counters = {
            "published": _series_total(reg, "repro_shm_bytes_published_total"),
            "pipe": _series_total(reg, "repro_fleet_ipc_payload_bytes_total"),
        }
        return thread_rep, t_thread, proc_rep, t_process, counters

    thread_rep, t_thread, proc_rep, t_process, counters = benchmark.pedantic(
        run, rounds=1, iterations=1)

    speedup = t_thread / t_process
    tensor_bytes = batch.values.nbytes
    estimate = estimate_fleet_comm(T, batch.values.shape[1], V, N, workers,
                                   m=M, shards=len(proc_rep.shard_sizes))
    cores = os.cpu_count() or 1
    report(
        "process_fleet",
        format_table(
            f"Process vs. thread fleet executor "
            f"(T={T}, m={M}, n={N}, V={V}, workers={workers}, "
            f"cores={cores})",
            ["executor", "ms", "converged", "speedup"],
            [
                ["thread", f"{t_thread * 1e3:9.1f}",
                 f"{int(thread_rep.result.converged.sum())}/{T * V}",
                 "1.00x"],
                ["process", f"{t_process * 1e3:9.1f}",
                 f"{int(proc_rep.result.converged.sum())}/{T * V}",
                 f"{speedup:.2f}x"],
                ["", "", "", ""],
                ["tensor payload (shm, once)",
                 f"{counters['published'] / 1e6:9.2f}MB", "", ""],
                ["pipe payload (descriptors+meta)",
                 f"{counters['pipe'] / 1e3:9.2f}kB", "",
                 f"model {estimate.shm_pipe_bytes / 1e3:.2f}kB"],
            ],
        ),
    )

    # O(result) serialization, asserted unconditionally: the tensor
    # payload travels once through shared memory, never through a pipe
    assert counters["published"] >= tensor_bytes
    assert 0 < counters["pipe"] < 0.01 * tensor_bytes, (
        f"pipe payload {counters['pipe']:.0f}B should exclude the "
        f"{tensor_bytes}B tensor payload")
    # the comm model's pipe-byte ledger bounds the measured traffic
    assert counters["pipe"] <= estimate.shm_pipe_bytes

    # bit-for-bit: shard boundaries and executor tier change scheduling,
    # never arithmetic
    np.testing.assert_array_equal(thread_rep.result.eigenvalues,
                                  proc_rep.result.eigenvalues)
    np.testing.assert_array_equal(thread_rep.result.converged,
                                  proc_rep.result.converged)

    if cores < 2:
        pytest.skip(
            f"single usable core: measured {speedup:.2f}x; the "
            f">={TARGET_SPEEDUP}x floor needs parallel hardware")
    assert speedup >= TARGET_SPEEDUP, (
        f"process executor speedup {speedup:.2f}x below the "
        f"{TARGET_SPEEDUP}x floor over the thread executor")
