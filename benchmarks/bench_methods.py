"""Solver zoo method comparison on the reference workload.

The PR-10 registry routes ``repro.solve(method=...)`` between three
independent eigensolvers; this benchmark measures what each one buys on
the paper's reference workload (64 tensors in R^[4,6], 32 shared
starts):

* ``sshopm`` — the fleet engine's convex-shift lockstep sweep: the
  throughput baseline.
* ``geap`` — the same fleet lanes with a per-sweep projected-Hessian
  shift (arXiv:1007.1267): fewer wasted iterations per lane, one extra
  Hessian eigendecomposition per live lane per sweep.
* ``qrst`` — dense tensor QR with deflation per tensor
  (arXiv:1411.1926): no starts at all, a full slate of extreme
  eigenpairs per run, but dense ``n^m`` work.

The measured (pairs found, sweeps, wall time) triples feed the
``method="auto"`` heuristic table (``repro.solvers.AUTO_RULES``, see
``docs/solvers.md``); the smoke-sized mirror of this workload is
recorded through the ``repro-bench/1`` harness as ``method_compare`` so
``repro bench-compare`` gates regressions.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.engine import fleet_solve
from repro.solvers import qrst_batch
from repro.symtensor import random_symmetric_batch
from repro.util.rng import make_rng

T, M, N, V = 64, 4, 6, 32
ALPHA, TOL, MAX_ITERS = 6.0, 1e-8, 300


@pytest.fixture(scope="module")
def workload():
    batch = random_symmetric_batch(T, M, N, rng=0)
    rng = make_rng(1)
    starts = rng.standard_normal((V, N))
    starts /= np.linalg.norm(starts, axis=1, keepdims=True)
    return batch, starts


def _distinct_pairs(result, batch):
    return sum(len(pairs) for pairs in result.eigenpairs(batch))


def _runners(batch, starts):
    return {
        "sshopm": lambda: fleet_solve(batch, starts=starts, alpha=ALPHA,
                                      tol=TOL, max_iters=MAX_ITERS),
        "geap": lambda: fleet_solve(batch, starts=starts, tol=TOL,
                                    max_iters=MAX_ITERS, adaptive="geap"),
        "qrst": lambda: qrst_batch(batch, num_starts=V, tol=TOL,
                                   max_iters=MAX_ITERS, rng=2),
    }


@pytest.mark.benchmark(group="solver-methods")
def test_report_method_comparison(benchmark, workload):
    batch, starts = workload
    runners = _runners(batch, starts)

    def run():
        rows, stats = [], {}
        for name, fn in runners.items():
            fn()  # warm: plan cache, codegen, dense conversion
            t0 = time.perf_counter()
            res = fn()
            seconds = time.perf_counter() - t0
            pairs = _distinct_pairs(res, batch)
            lanes = int(res.converged.sum())
            stats[name] = (seconds, pairs, lanes, int(res.sweeps))
            rows.append([name, f"{seconds * 1e3:9.1f}", int(res.sweeps),
                         pairs, f"{lanes}/{res.converged.size}",
                         f"{pairs / seconds:8.1f}"])
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        "method_compare",
        format_table(
            f"Solver methods on the reference workload "
            f"(T={T} tensors, m={M}, n={N}, V={V} starts)",
            ["method", "ms", "sweeps", "pairs", "lanes conv", "pairs/s"],
            rows,
        ),
    )

    # every method must actually produce spectra on this workload; the
    # agreement gate on known-answer fixtures lives in tests/test_solver_zoo.py
    for name, (seconds, pairs, lanes, _) in stats.items():
        assert pairs > 0, f"{name} found no eigenpairs"
        assert lanes > 0, f"{name} converged no lanes"
        assert seconds > 0.0
    # qrst is deterministic: a repeat run returns the identical spectrum
    a = qrst_batch(batch.subset(np.arange(4)), num_starts=V, tol=TOL,
                   max_iters=MAX_ITERS, rng=2)
    b = qrst_batch(batch.subset(np.arange(4)), num_starts=V, tol=TOL,
                   max_iters=MAX_ITERS, rng=2)
    np.testing.assert_array_equal(a.converged, b.converged)
    np.testing.assert_allclose(
        a.eigenvalues[a.converged], b.eigenvalues[b.converged],
        rtol=0, atol=0)
