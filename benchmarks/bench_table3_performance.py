"""Table III — performance of the eight implementations on the 1024-tensor
workload (m=4, n=3, V=128, single precision, alpha=0).

Two layers, matching DESIGN.md's substitution policy:

* **modeled rows** — the paper's eight configurations (CPU 1/4/8 cores x
  {general, unrolled} and GPU x {general, unrolled}) predicted by the
  calibrated device models, fed with the iteration counts *measured* on the
  synthetic phantom workload.  Printed against the paper's numbers in
  Table III(a)/(b)/(c) layout.
* **measured rows** — real wall-clock of this repository's Python kernel
  variants on the same workload (per-pair timing for the interpreted
  loops, full-workload timing for the batched backends), demonstrating the
  general->unrolled->batched progression on the host actually running.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.core.multistart import multistart_sshopm
from repro.core.sshopm import sshopm
from repro.gpu.kernelspec import sshopm_launch
from repro.gpu.perfmodel import predict_sshopm
from repro.parallel.cpumodel import predict_cpu_sshopm

PAPER = {
    # Table III(a) GFLOPS / (b) ms / (c) relative
    ("cpu1", "general"): (0.24, 2451, 1.00),
    ("cpu4", "general"): (0.86, 691, 3.55),
    ("cpu8", "general"): (1.73, 344, 7.14),
    ("gpu", "general"): (17.00, 35, 70.23),
    ("cpu1", "unrolled"): (2.05, 289, 1.00),
    ("cpu4", "unrolled"): (7.07, 84, 3.45),
    ("cpu8", "unrolled"): (9.67, 61, 4.72),
    ("gpu", "unrolled"): (317.83, 1.9, 155.07),
}


def _useful_flops(avg_iters, T=1024, V=128):
    launch = sshopm_launch(4, 3, num_starts=V, variant="unrolled")
    return T * V * avg_iters * launch.flops_per_thread_iter


@pytest.mark.benchmark(group="table3-report")
def test_regenerate_table3_model(benchmark, measured_iterations):
    """The eight modeled configurations vs the paper's Table III."""
    avg_iters, per_tensor = measured_iterations
    total_flops = _useful_flops(avg_iters)

    def build():
        rows = []
        preds = {}
        for variant in ("general", "unrolled"):
            for cores, key in ((1, "cpu1"), (4, "cpu4"), (8, "cpu8")):
                p = predict_cpu_sshopm(total_flops, variant=variant, cores=cores)
                preds[(key, variant)] = (p.gflops, p.seconds * 1e3)
            g = predict_sshopm(
                m=4, n=3, num_tensors=1024, num_starts=128,
                iterations=per_tensor, variant=variant,
            )
            preds[("gpu", variant)] = (g.gflops, g.seconds * 1e3)
        for variant in ("general", "unrolled"):
            seq_ms = preds[("cpu1", variant)][1]
            for key in ("cpu1", "cpu4", "cpu8", "gpu"):
                gflops, ms = preds[(key, variant)]
                paper_gflops, paper_ms, paper_rel = PAPER[(key, variant)]
                rows.append([
                    f"{key:5s} {variant:8s}",
                    f"{gflops:8.2f}", f"{paper_gflops:8.2f}",
                    f"{ms:9.1f}", f"{paper_ms:9.1f}",
                    f"{seq_ms / ms:7.2f}", f"{paper_rel:7.2f}",
                ])
        return rows, preds

    rows, preds = benchmark.pedantic(build, rounds=1, iterations=1)

    # shape assertions: who wins and by roughly what factor
    assert preds[("gpu", "unrolled")][0] > 250  # ~318 GFLOPS
    speedup = preds[("gpu", "general")][1] / preds[("gpu", "unrolled")][1]
    assert 15 < speedup < 22  # paper: 18.70x
    cpu_unroll = preds[("cpu1", "general")][1] / preds[("cpu1", "unrolled")][1]
    assert 7 < cpu_unroll < 10  # paper: 8.47x
    assert preds[("gpu", "unrolled")][1] < preds[("cpu8", "unrolled")][1]

    report(
        "table3_performance_model",
        format_table(
            f"Table III (modeled, iterations measured on phantom: "
            f"avg {measured_iterations[0]:.1f}/pair)\n"
            "columns: model GFLOPS | paper GFLOPS | model ms | paper ms | "
            "model rel. speedup | paper rel. speedup",
            ["config", "GF", "GF(paper)", "ms", "ms(paper)", "rel", "rel(paper)"],
            rows,
        ),
    )


# ---------------------------------------------------------------------------
# Measured rows: real wall-clock of the Python variants on this host.
# ---------------------------------------------------------------------------

_MEASURED: dict[str, float] = {}  # variant -> seconds for full workload


def _per_pair_seconds(variant, tensor, start, iters=25):
    t0 = time.perf_counter()
    sshopm(tensor, x0=start, alpha=0.0, tol=0.0, max_iters=iters, kernels=variant)
    return (time.perf_counter() - t0) / iters


@pytest.mark.benchmark(group="table3-measured-perpair")
@pytest.mark.parametrize("variant", ["compressed", "precomputed", "unrolled", "unrolled_cse"])
def test_bench_per_pair_variants(benchmark, paper_workload, variant):
    """Per-(tensor, start) SS-HOPM iteration cost of the interpreted
    per-tensor kernel variants (extrapolated to the full workload in the
    report)."""
    phantom, starts = paper_workload
    tensor = phantom.tensors[0]

    def run():
        return sshopm(tensor, x0=starts[0], alpha=0.0, tol=0.0, max_iters=10,
                      kernels=variant)

    benchmark(run)
    per_iter = benchmark.stats["mean"] / 10
    _MEASURED[variant] = per_iter  # seconds per pair-iteration


@pytest.mark.benchmark(group="table3-measured-batched")
@pytest.mark.parametrize("backend", ["batched", "batched_unrolled"])
def test_bench_full_workload_batched(benchmark, paper_workload, backend):
    """Full 1024 x 128 workload with the vectorized backends (the
    functional GPU analog), single precision as in the paper."""
    phantom, starts = paper_workload

    def run():
        return multistart_sshopm(
            phantom.tensors, starts=starts, alpha=0.0, tol=1e-6, max_iters=60,
            backend=backend, dtype=np.float32,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)
    _MEASURED[backend] = benchmark.stats["mean"]
    assert result.converged.mean() > 0.9


@pytest.mark.benchmark(group="table3-report")
def test_report_measured_rows(benchmark, paper_workload, measured_iterations):
    """Assemble the measured-variants report (depends on the benches above
    having populated _MEASURED)."""
    avg_iters, _ = measured_iterations
    pairs = 1024 * 128

    def build():
        rows = []
        base = _MEASURED.get("compressed")
        for variant in ("compressed", "precomputed", "unrolled", "unrolled_cse"):
            per_iter = _MEASURED.get(variant)
            if per_iter is None:
                continue
            full = per_iter * pairs * avg_iters
            rows.append([
                variant, f"{per_iter * 1e6:10.1f}", f"{full:10.1f}",
                f"{base / per_iter:7.2f}" if base else "",
            ])
        for backend in ("batched", "batched_unrolled"):
            secs = _MEASURED.get(backend)
            if secs is None:
                continue
            rows.append([backend, "-", f"{secs:10.3f}", ""])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    if rows:
        report(
            "table3_performance_measured",
            format_table(
                "Table III (measured on this host, Python): per-pair "
                "iteration cost, extrapolated full-workload seconds "
                "(1024 tensors x 128 starts), speedup over the general "
                "(Figures 2-3) implementation",
                ["variant", "us/pair-iter", "full-sec", "speedup"],
                rows,
            ),
        )
