"""Table I — the index classes of I^[3,4] in lexicographic order.

Regenerates the paper's Table I verbatim (20 rows, index and monomial
representations) and benchmarks the UPDATEINDEX enumeration machinery.
Every test here uses the ``benchmark`` fixture so the module runs fully
under ``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from benchmarks.conftest import format_table, report
from repro.symtensor.indexing import (
    index_classes,
    iter_index_classes,
    monomial_from_index,
    rank_index,
    unrank_index,
    update_index,
)
from repro.util.combinatorics import num_unique_entries


def _build_table1_rows():
    rows = []
    for i, index in enumerate(iter_index_classes(3, 4), start=1):
        mono = monomial_from_index(index, 4)
        rows.append([i, " ".join(map(str, index)), " ".join(map(str, mono))])
    return rows


@pytest.mark.benchmark(group="table1-regenerate")
def test_regenerate_table1(benchmark):
    rows = benchmark(_build_table1_rows)
    assert len(rows) == 20
    # spot checks against the paper's printed table
    assert rows[0][1] == "1 1 1" and rows[0][2] == "3 0 0 0"
    assert rows[14][1] == "2 3 4" and rows[14][2] == "0 1 1 1"
    assert rows[19][1] == "4 4 4" and rows[19][2] == "0 0 0 3"
    report(
        "table1_index_classes",
        format_table(
            "Table I: index classes of I^[3,4] in lexicographic order",
            ["#", "index", "monomial"],
            rows,
        ),
    )


def _full_enumeration(m, n):
    index = [1] * m
    count = 1
    while update_index(index, n):
        count += 1
    return count


@pytest.mark.benchmark(group="table1-enumeration")
@pytest.mark.parametrize("m,n", [(3, 4), (4, 3), (4, 8), (6, 6)])
def test_bench_update_index(benchmark, m, n):
    """Throughput of the Figure 4 successor function over a full
    enumeration."""
    count = benchmark(_full_enumeration, m, n)
    assert count == num_unique_entries(m, n) == len(index_classes(m, n))


@pytest.mark.benchmark(group="table1-enumeration")
def test_bench_rank_unrank(benchmark):
    """Random access into the lex order (rank/unrank round trip)."""

    def work():
        acc = 0
        for r in range(0, num_unique_entries(4, 8), 7):
            acc += rank_index(unrank_index(r, 4, 8), 8)
        return acc

    benchmark(work)
