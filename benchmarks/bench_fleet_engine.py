"""Fleet solve engine throughput vs. a per-tensor solver loop.

The fleet engine (``repro.engine.fleet_solve``) schedules every
``(tensor, start)`` pair of a workload as one lane of a single batched
SS-HOPM iteration: one plan-cached kernel call advances all lanes,
converged lanes retire and are compacted away, and the eigenvalue is
recovered from the update vector (``lambda = x . A x^{m-1}``) instead of
a second contraction.  This bench pins the headline claim: on the target
workload (64 tensors in R^[4,6], 32 shared starts) the fleet engine is
at least 5x faster than looping ``multistart_sshopm`` over the tensors,
while producing the same deduplicated spectra.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.core import multistart_sshopm
from repro.engine import fleet_solve
from repro.symtensor import random_symmetric_batch
from repro.util.rng import make_rng

T, M, N, V = 64, 4, 6, 32
ALPHA, TOL, MAX_ITERS = 6.0, 1e-8, 300
TARGET_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def workload():
    batch = random_symmetric_batch(T, M, N, rng=0)
    rng = make_rng(1)
    starts = rng.standard_normal((V, N))
    starts /= np.linalg.norm(starts, axis=1, keepdims=True)
    return batch, starts


def _run_fleet(batch, starts, variant):
    return fleet_solve(batch, starts=starts, alpha=ALPHA, tol=TOL,
                       max_iters=MAX_ITERS, variant=variant)


def _run_loop(batch, starts):
    return [
        multistart_sshopm(batch[t], starts=starts, alpha=ALPHA, tol=TOL,
                          max_iters=MAX_ITERS)
        for t in range(len(batch))
    ]


@pytest.mark.benchmark(group="fleet-engine")
def test_report_fleet_vs_loop(benchmark, workload):
    batch, starts = workload

    def time_once(fn):
        fn()  # warm: plan cache, codegen, allocator
        t0 = time.perf_counter()
        out = fn()
        return time.perf_counter() - t0, out

    def run():
        t_loop, loop_res = time_once(lambda: _run_loop(batch, starts))
        rows, best = [], 0.0
        rows.append(["looped multistart", f"{t_loop * 1e3:9.1f}",
                     f"{sum(int(r.converged.sum()) for r in loop_res)}/{T * V}",
                     "1.00x"])
        fleet_results = {}
        for variant in ("vectorized", "unrolled", "unrolled_cse"):
            t_fleet, fr = time_once(lambda v=variant: _run_fleet(batch, starts, v))
            fleet_results[variant] = fr
            speedup = t_loop / t_fleet
            best = max(best, speedup)
            rows.append([f"fleet ({variant})", f"{t_fleet * 1e3:9.1f}",
                         f"{int(fr.converged.sum())}/{T * V}",
                         f"{speedup:.2f}x"])
        return rows, best, loop_res, fleet_results

    rows, best, loop_res, fleet_results = benchmark.pedantic(
        run, rounds=1, iterations=1)

    report(
        "fleet_engine",
        format_table(
            f"Fleet engine vs. per-tensor loop "
            f"(T={T} tensors, m={M}, n={N}, V={V} starts)",
            ["solver", "ms", "converged", "speedup"],
            rows,
        ),
    )

    # the headline target: >= 5x with the best cached plan
    assert best >= TARGET_SPEEDUP, (
        f"fleet engine best speedup {best:.2f}x below target "
        f"{TARGET_SPEEDUP}x over looped multistart_sshopm"
    )

    # same spectra as the reference path, within dedup tolerance
    fr = fleet_results["unrolled_cse"]
    for t, ref in enumerate(loop_res):
        got = np.sort(fr.eigenvalues[t][fr.converged[t]])
        want = np.sort(ref.eigenvalues[ref.converged])
        assert got.shape == want.shape
        np.testing.assert_allclose(got, want, atol=1e-5)
