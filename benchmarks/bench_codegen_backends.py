"""Codegen-backend comparison: numpy exec path vs numba native JIT, and
the persistent plan cache's cross-process warm-up.

Two acceptance floors from the codegen-backend redesign live here (they
are timing assertions, so they ride the benchmark suite, not tier-1):

* the numba backend runs the fleet workload (T=64, m=4, n=6, V=32) at
  least 1.5x faster than the numpy backend — asserted only when numba is
  actually installed (without it the backend degrades to numpy and the
  ratio is definitionally ~1);
* a second process constructing an already-persisted plan from the disk
  cache is at least 10x faster than a cold first process.
"""

import subprocess
import sys
import time

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.engine.fleet import fleet_solve
from repro.kernels.codegen import emit, numba_available
from repro.symtensor.random import random_symmetric_batch

T, M, N, V = 64, 4, 6, 32


def _fleet(batch, backend):
    return fleet_solve(batch, num_starts=V, alpha=0.0, max_iters=200,
                       rng=7, variant="unrolled_cse", backend=backend)


@pytest.mark.benchmark(group="codegen-backends")
@pytest.mark.parametrize("backend", ["numpy", "numba"])
def test_bench_fleet_backend(benchmark, backend):
    batch = random_symmetric_batch(T, M, N, rng=42)
    _fleet(batch, backend)  # warm: JIT + plan build outside the timing
    benchmark(lambda: _fleet(batch, backend))


def test_numba_speedup_floor():
    """The redesign's perf acceptance: numba >= 1.5x numpy on the fleet
    workload.  Skipped (not failed) when numba is absent — the graceful
    numpy fallback is covered functionally in tier-1."""
    if not numba_available():
        pytest.skip("numba not installed; backend degrades to numpy")
    batch = random_symmetric_batch(T, M, N, rng=42)
    times = {}
    for backend in ("numpy", "numba"):
        _fleet(batch, backend)  # warm
        reps = [0.0] * 3
        for i in range(3):
            t0 = time.perf_counter()
            _fleet(batch, backend)
            reps[i] = time.perf_counter() - t0
        times[backend] = min(reps)
    ratio = times["numpy"] / times["numba"]
    report(
        "codegen_backends",
        format_table(
            f"Codegen backends on the fleet workload (T={T}, m={M}, "
            f"n={N}, V={V})",
            ["backend", "best of 3 (ms)", "speedup vs numpy"],
            [[b, f"{t * 1e3:9.2f}", f"{times['numpy'] / t:6.2f}x"]
             for b, t in times.items()],
        ),
    )
    assert ratio >= 1.5, (
        f"numba backend only {ratio:.2f}x over numpy (floor is 1.5x)"
    )


_TIME_PLAN = """\
import os, sys, time
os.environ["REPRO_PLAN_CACHE_DIR"] = sys.argv[1]
t0 = time.perf_counter()
from repro.kernels.plan import get_plan
import_seconds = time.perf_counter() - t0
t0 = time.perf_counter()
plan = get_plan({m}, {n}, "unrolled_cse", "numpy")
print(time.perf_counter() - t0, int(plan.meta.get("from_disk", False)))
"""


def _plan_seconds(cache_dir, m=6, n=6):
    proc = subprocess.run(
        [sys.executable, "-c", _TIME_PLAN.format(m=m, n=n), str(cache_dir)],
        capture_output=True, text=True, check=True,
    )
    seconds, from_disk = proc.stdout.split()
    return float(seconds), bool(int(from_disk))


def test_disk_cache_warm_speedup_floor(tmp_path):
    """Second-process plan construction from the persisted entry must be
    >= 10x faster than the cold build (tables + codegen skipped)."""
    cache_dir = tmp_path / "plans"
    cold, cold_from_disk = _plan_seconds(cache_dir)
    warm, warm_from_disk = _plan_seconds(cache_dir)
    assert not cold_from_disk and warm_from_disk
    report(
        "plan_disk_cache",
        format_table(
            "Cross-process plan construction (m=6, n=6, unrolled_cse)",
            ["process", "seconds", "speedup"],
            [["cold (builds + persists)", f"{cold:8.4f}", "1.00x"],
             ["warm (loads from disk)", f"{warm:8.4f}",
              f"{cold / warm:6.1f}x"]],
        ),
    )
    assert cold / warm >= 10.0, (
        f"warm plan construction only {cold / warm:.1f}x faster (floor 10x)"
    )


def test_backends_bitwise_comparable(tmp_path):
    """Sanity next to the timing: both backends produce results within
    1e-10 on the bench workload itself (fastmath stays off in the JIT)."""
    batch = random_symmetric_batch(8, M, N, rng=3)
    a = batch.values[:, None, :]
    x = np.random.default_rng(4).standard_normal((8, V, N))
    ref = emit(M, N, "unrolled_cse", target="numpy", batched=True)
    alt = emit(M, N, "unrolled_cse", target="numba")
    np.testing.assert_allclose(alt.ax_m1(a, x), ref.ax_m1(a, x), atol=1e-10)
