"""Future-work bench — blocked kernels for general tensor sizes.

Section VI: "we hope to be able to attain the same performance reported
here for tensors of general size using register blocking and loop
unrolling."  This bench measures the blocked decomposition against the
flat per-entry kernels as the dimension grows (where full unrolling stops
being viable), and sweeps the block size (the paper's open question of
choosing block shapes/ordering for cache behaviour).
"""

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.kernels.batched import ax_m_batched
from repro.kernels.blocked import ax_m1_blocked, ax_m_blocked, blocking_plan
from repro.kernels.precomputed import ax_m_precomputed
from repro.kernels.tables import kernel_tables
from repro.symtensor.random import random_symmetric_tensor
from repro.util.combinatorics import num_unique_entries


@pytest.mark.benchmark(group="blocked-vs-flat")
@pytest.mark.parametrize("n", [6, 12, 24])
@pytest.mark.parametrize("variant", ["blocked", "precomputed", "vectorized"])
def test_bench_scalar_kernel_scaling(benchmark, n, variant):
    m = 4
    tensor = random_symmetric_tensor(m, n, rng=0)
    x = np.random.default_rng(1).normal(size=n)
    if variant == "blocked":
        plan = blocking_plan(m, n, min(6, n))
        ax_m_blocked(tensor, x, plan=plan)  # warm caches
        benchmark(ax_m_blocked, tensor, x, 6, plan)
    elif variant == "precomputed":
        ax_m_precomputed(tensor, x)
        benchmark(ax_m_precomputed, tensor, x)
    else:
        tab = kernel_tables(m, n)
        benchmark(ax_m_batched, tensor.values, x, tab)


@pytest.mark.benchmark(group="blocked-blocksize")
@pytest.mark.parametrize("block_size", [2, 4, 6, 12, 24])
def test_bench_block_size_sweep(benchmark, block_size):
    """Block-size tradeoff at m=4, n=24 (the analog of choosing register
    block extents)."""
    m, n = 4, 24
    tensor = random_symmetric_tensor(m, n, rng=2)
    x = np.random.default_rng(3).normal(size=n)
    plan = blocking_plan(m, n, block_size)
    ax_m1_blocked(tensor, x, plan=plan)

    def run():
        ax_m_blocked(tensor, x, plan=plan)
        ax_m1_blocked(tensor, x, plan=plan)

    benchmark(run)


@pytest.mark.benchmark(group="blocked-report")
def test_report_blocked_speedup(benchmark):
    """Speedup of blocked over flat per-entry evaluation across sizes."""
    import time

    def build():
        rows = []
        for m, n in [(4, 6), (4, 12), (4, 24), (4, 48), (6, 12)]:
            tensor = random_symmetric_tensor(m, n, rng=4)
            x = np.random.default_rng(5).normal(size=n)
            plan = blocking_plan(m, n, min(6, n))
            # warm both paths so one-time table construction is excluded
            ax_m_blocked(tensor, x, plan=plan)
            ax_m_precomputed(tensor, x)
            reps = 5
            t0 = time.perf_counter()
            for _ in range(reps):
                ax_m_blocked(tensor, x, plan=plan)
            blocked = (time.perf_counter() - t0) / reps
            t0 = time.perf_counter()
            ax_m_precomputed(tensor, x)
            flat = time.perf_counter() - t0
            rows.append([
                f"m={m} n={n}", num_unique_entries(m, n), plan.num_blocks,
                f"{blocked * 1e3:8.3f}", f"{flat * 1e3:8.3f}",
                f"{flat / blocked:7.1f}x",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    # the win must grow with problem size
    speedups = [float(r[5].rstrip("x")) for r in rows]
    assert speedups[2] > speedups[0]
    assert speedups[2] > 5.0
    report(
        "blocked_future_work",
        format_table(
            "Section VI future work: blocked kernels for general (m, n) — "
            "A x^m wall-clock, blocked contractions vs flat per-entry loop",
            ["size", "U", "blocks", "blocked ms", "flat ms", "speedup"],
            rows,
        ),
    )
