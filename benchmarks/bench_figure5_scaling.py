"""Figure 5 — performance vs number of tensors (unrolled implementations).

The paper plots GFLOPS (log y) against subsets of the 1024-tensor set for
CPU 1/4/8 cores and the GPU, all with loop unrolling and 128 starting
vectors.  Key shape: CPU lines are flat (throughput independent of T), the
GPU line ramps roughly linearly while SMs fill and saturates near 318
GFLOPS once T exceeds ~50-100 blocks.

This bench regenerates the series from the device models (fed with measured
iteration counts), asserts the shape, and also measures the real host
throughput of the batched backend across the same sweep.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import format_table, report
from repro.core.multistart import multistart_sshopm
from repro.gpu.kernelspec import sshopm_launch
from repro.gpu.perfmodel import predict_sshopm
from repro.parallel.cpumodel import predict_cpu_sshopm

SWEEP = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]


@pytest.mark.benchmark(group="figure5-report")
def test_regenerate_figure5(benchmark, measured_iterations):
    avg_iters, per_tensor = measured_iterations
    launch = sshopm_launch(4, 3, num_starts=128, variant="unrolled")

    def build():
        rows = []
        series = {"gpu": [], "cpu1": [], "cpu4": [], "cpu8": []}
        for T in SWEEP:
            flops = T * 128 * avg_iters * launch.flops_per_thread_iter
            gpu = predict_sshopm(
                m=4, n=3, num_tensors=T, num_starts=128,
                iterations=per_tensor[:T], variant="unrolled",
            ).gflops
            cpu = {c: predict_cpu_sshopm(flops, variant="unrolled", cores=c).gflops
                   for c in (1, 4, 8)}
            series["gpu"].append(gpu)
            for c in (1, 4, 8):
                series[f"cpu{c}"].append(cpu[c])
            rows.append([T, f"{cpu[1]:7.2f}", f"{cpu[4]:7.2f}",
                         f"{cpu[8]:7.2f}", f"{gpu:8.1f}"])
        return rows, series

    rows, series = benchmark.pedantic(build, rounds=1, iterations=1)

    gpu = np.array(series["gpu"])
    # CPU series flat (model: rate independent of T)
    for key in ("cpu1", "cpu4", "cpu8"):
        s = np.array(series[key])
        assert np.allclose(s, s[0], rtol=1e-6)
    # GPU ramps: near-linear at the small end
    assert gpu[2] / gpu[0] > 3.0  # T=8 vs T=2
    # saturates at the large end near the Table III rate
    assert abs(gpu[-1] - gpu[-2]) / gpu[-1] < 0.12
    assert gpu[-1] > 250
    # crossover: GPU beats 8-core CPU somewhere in the sweep, not at T=2
    cpu8 = np.array(series["cpu8"])
    assert gpu[0] < 8 * cpu8[0]
    assert gpu[-1] > 10 * cpu8[-1]

    from repro.util.asciiplot import ascii_plot

    ts = np.array(SWEEP, dtype=float)
    plot = ascii_plot(
        {
            "gpu": (ts, np.array(series["gpu"])),
            "8-core": (ts, np.array(series["cpu8"])),
            "4-core": (ts, np.array(series["cpu4"])),
            "1-core": (ts, np.array(series["cpu1"])),
        },
        width=60,
        height=16,
        logx=True,
        logy=True,
        xlabel="tensors",
        ylabel="GFLOPS",
    )
    report(
        "figure5_scaling",
        format_table(
            "Figure 5 (modeled): GFLOPS vs number of tensors, unrolled "
            "kernels, V=128 (paper: CPU lines flat at 2.05/7.07/9.67; GPU "
            "ramps to ~318)",
            ["T", "cpu1", "cpu4", "cpu8", "gpu"],
            rows,
        )
        + "\n\n" + plot,
    )


@pytest.mark.benchmark(group="figure5-host")
@pytest.mark.parametrize("T", [64, 256, 1024])
def test_bench_host_batched_scaling(benchmark, paper_workload, T):
    """Real host throughput of the batched backend over subsets of the
    1024-tensor set (the host analog of the GPU curve: throughput grows
    with T as vectorization amortizes per-sweep overheads)."""
    phantom, starts = paper_workload
    subset = phantom.tensors.subset(T)

    def run():
        return multistart_sshopm(subset, starts=starts, alpha=0.0, tol=1e-6,
                                 max_iters=30, backend="batched_unrolled",
                                 dtype=np.float32)

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)


@pytest.mark.benchmark(group="figure5-report")
def test_report_host_scaling(benchmark, paper_workload):
    """Measured host pair-throughput across the sweep (single shot each)."""
    phantom, starts = paper_workload

    def build():
        rows = []
        for T in (4, 64, 256, 1024):
            subset = phantom.tensors.subset(T)
            t0 = time.perf_counter()
            res = multistart_sshopm(subset, starts=starts, alpha=0.0, tol=1e-6,
                                    max_iters=30, backend="batched_unrolled",
                                    dtype=np.float32)
            dt = time.perf_counter() - t0
            sweeps = res.sweeps
            pair_iters = T * 128 * sweeps
            rows.append([T, f"{dt*1e3:9.1f}", f"{pair_iters/dt/1e6:10.2f}"])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    # throughput grows with T (vectorization amortization), mirroring the
    # GPU's fill-the-device ramp
    rates = [float(r[2]) for r in rows]
    assert rates[-1] > 1.3 * rates[0]
    report(
        "figure5_host_measured",
        format_table(
            "Figure 5 (measured, this host): batched_unrolled backend, "
            "lockstep pair-iterations per second vs subset size",
            ["T", "ms", "Mpair-iter/s"],
            rows,
        ),
    )
