"""Basins of attraction: which starting vectors find which eigenpairs.

The paper runs SS-HOPM from 128 random starting vectors per tensor "in the
hope of reasonably covering the sphere", and lists "choice of starting
vector" among the open problems.  This example maps the basins of
attraction explicitly for the fixed example tensor: an ASCII chart of the
sphere colored by the eigenpair each start converges to, basin sizes, and
a coupon-collector estimate of how many random starts guarantee full
coverage — context for the paper's V = 128.

Run:  python examples/basin_explorer.py
"""

from repro.core import (
    basin_map,
    render_basin_map,
    starts_needed_estimate,
    suggested_shift,
)
from repro.symtensor import kolda_mayo_example_3x3x3


def main():
    tensor = kolda_mayo_example_3x3x3()
    alpha = suggested_shift(tensor)
    print(f"tensor: {tensor}, shift alpha = {alpha:.3f}")
    print("mapping basins from 900 starting vectors...\n")
    bmap = basin_map(tensor, alpha=alpha, resolution=900, tol=1e-12,
                     max_iter=5000)

    print(render_basin_map(bmap, width=72, height=22))
    print(f"\nconverged starts: {bmap.coverage:.1%}")
    print(f"{'lambda':>10s}  {'stability':<12s}{'basin':>8s}")
    for pair, frac in zip(bmap.pairs, bmap.fractions):
        print(f"{pair.eigenvalue:+10.4f}  {pair.stability:<12s}{frac:8.1%}")

    for conf in (0.95, 0.99, 0.999):
        need = starts_needed_estimate(bmap.fractions, conf)
        print(f"random starts for {conf:.1%} full coverage: {need}")
    print("\n(the paper uses V = 128 starts per tensor — comfortably above "
          "the estimate for this spectrum)")


if __name__ == "__main__":
    main()
