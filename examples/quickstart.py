"""Quickstart: compute the real eigenpairs of a small symmetric tensor.

Builds a random 4th-order, 3-dimensional symmetric tensor (the size of the
paper's DW-MRI application), stores it compressed (15 unique values instead
of 81 dense entries), and finds its SS-HOPM-reachable eigenpairs from many
starting vectors.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import find_eigenpairs, sshopm, suggested_shift
from repro.symtensor import random_symmetric_tensor

def main():
    # a reproducible random symmetric tensor in R^[4,3]
    tensor = random_symmetric_tensor(m=4, n=3, rng=42)
    print(f"tensor: {tensor}")
    print(f"dense entries: {tensor.num_dense}, stored: {tensor.num_unique} "
          f"({tensor.compression_ratio:.1f}x compression)\n")

    # one SS-HOPM run (Figure 1 of the paper) with a convexity shift
    alpha = suggested_shift(tensor)
    result = sshopm(tensor, alpha=alpha, rng=0, tol=1e-14, max_iters=2000)
    print("single SS-HOPM run:")
    print(f"  lambda      = {result.eigenvalue:+.6f}")
    print(f"  x           = {np.array2string(result.eigenvector, precision=4)}")
    print(f"  iterations  = {result.iterations}, converged = {result.converged}")
    print(f"  ||Ax^3 - lambda x|| = {result.residual:.2e}\n")

    # the full reachable spectrum: multistart + dedup + stability labels
    pairs = find_eigenpairs(tensor, num_starts=128, alpha=alpha, rng=1,
                            tol=1e-13, max_iters=3000)
    print(f"found {len(pairs)} distinct real eigenpairs from 128 starts:")
    print(f"{'lambda':>10s}  {'stability':<12s} {'basin':>6s}  eigenvector")
    for p in pairs:
        vec = np.array2string(p.eigenvector, precision=4, suppress_small=True)
        print(f"{p.eigenvalue:+10.6f}  {p.stability:<12s} {p.occurrences:>6d}  {vec}")

    # positive-stable pairs are the local maxima of f(x) = A x^4 on the
    # sphere — in the MRI application these are the fiber directions
    maxima = [p for p in pairs if p.stability == "pos_stable"]
    print(f"\nlocal maxima of A x^4 on the unit sphere: {len(maxima)}")


if __name__ == "__main__":
    main()
