"""Quickstart: compute the real eigenpairs of a small symmetric tensor.

Builds a random 4th-order, 3-dimensional symmetric tensor (the size of the
paper's DW-MRI application), stores it compressed (15 unique values instead
of 81 dense entries), and finds its SS-HOPM-reachable eigenpairs through
``repro.solve`` — the one front door that routes each request to the right
solver by its shape (one start, many starts, or a whole batch).

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.core import suggested_shift
from repro.symtensor import random_symmetric_batch, random_symmetric_tensor


def main():
    # a reproducible random symmetric tensor in R^[4,3]
    tensor = random_symmetric_tensor(m=4, n=3, rng=42)
    print(f"tensor: {tensor}")
    print(f"dense entries: {tensor.num_dense}, stored: {tensor.num_unique} "
          f"({tensor.compression_ratio:.1f}x compression)\n")

    # one SS-HOPM run (Figure 1 of the paper) with a convexity shift;
    # a single-start request routes to plain sshopm
    alpha = suggested_shift(tensor)
    report = repro.solve(tensor, alpha=alpha, rng=0, tol=1e-14, max_iters=2000)
    result = report.result
    print(f"single run (routed to {report.solver}):")
    print(f"  lambda      = {result.eigenvalue:+.6f}")
    print(f"  x           = {np.array2string(result.eigenvector, precision=4)}")
    print(f"  iterations  = {result.iterations}, converged = {result.converged}")
    print(f"  ||Ax^3 - lambda x|| = {result.residual:.2e}\n")

    # the full reachable spectrum: starts=128 routes to the multistart
    # solver; eigenpairs() dedups and (with classify=True) labels stability
    report = repro.solve(tensor, starts=128, alpha=alpha, rng=1,
                         tol=1e-13, max_iters=3000)
    pairs = report.eigenpairs(tensor, classify=True)[0]
    print(f"found {len(pairs)} distinct real eigenpairs from 128 starts "
          f"(routed to {report.solver}):")
    print(f"{'lambda':>10s}  {'stability':<12s} {'basin':>6s}  eigenvector")
    for p in pairs:
        vec = np.array2string(p.eigenvector, precision=4, suppress_small=True)
        print(f"{p.eigenvalue:+10.6f}  {p.stability:<12s} {p.occurrences:>6d}  {vec}")

    # positive-stable pairs are the local maxima of f(x) = A x^4 on the
    # sphere — in the MRI application these are the fiber directions
    maxima = [p for p in pairs if p.stability == "pos_stable"]
    print(f"\nlocal maxima of A x^4 on the unit sphere: {len(maxima)}\n")

    # a whole batch routes to the fleet engine: every (tensor, start) lane
    # advances together, finished lanes retire, kernels come from the plan
    # cache
    batch = random_symmetric_batch(16, 4, 3, rng=7)
    report = repro.solve(batch, starts=32, alpha=alpha, rng=2)
    print(f"batch of {len(batch)} tensors (routed to {report.solver}):")
    print(f"  {report.result.summary()}")
    spectra = report.eigenpairs()
    print(f"  distinct eigenpairs per tensor: "
          f"{[len(ps) for ps in spectra[:8]]} ...")


if __name__ == "__main__":
    main()
