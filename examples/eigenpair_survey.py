"""Eigenpair survey: spectrum structure, shift strategies, and convergence.

Explores the questions the paper flags as open ("choice of starting vector,
choice of shift, and finding eigenpairs with certain properties") on a
fixed order-3 example tensor:

  * full reachable spectrum from both convex (maxima) and concave (minima)
    shifted iterations,
  * basin-of-attraction sizes per eigenpair,
  * iteration-count comparison of shift strategies (zero / conservative /
    adaptive),
  * the theoretical eigenpair count of Cartwright & Sturmfels.

Run:  python examples/eigenpair_survey.py
"""

import numpy as np

import repro
from repro.core import suggested_shift
from repro.symtensor import kolda_mayo_example_3x3x3
from repro.util.rng import random_unit_vector


def survey(tensor, alpha, rng):
    """Reachable spectrum via the facade: multistart + dedup + stability."""
    report = repro.solve(tensor, starts=500, alpha=alpha, rng=rng,
                         tol=1e-14, max_iters=5000)
    return report.eigenpairs(tensor, classify=True)[0]


def main():
    tensor = kolda_mayo_example_3x3x3()
    m, n = tensor.m, tensor.n
    theoretical = ((m - 1) ** n - 1) // (m - 2)
    print(f"tensor: {tensor}")
    print(f"Cartwright-Sturmfels bound: {theoretical} eigenpairs over C\n")

    alpha = suggested_shift(tensor)
    print(f"conservative convexity shift alpha = {alpha:.3f}\n")

    print("=== reachable spectrum, convex iteration (alpha > 0) ===")
    pairs_max = survey(tensor, alpha, rng=0)
    for p in pairs_max:
        print(f"  lambda = {p.eigenvalue:+.4f}  {p.stability:<11s} "
              f"basin {p.occurrences / 500:5.1%}  residual {p.residual:.1e}")

    print("\n=== reachable spectrum, concave iteration (alpha < 0) ===")
    pairs_min = survey(tensor, -alpha, rng=1)
    for p in pairs_min:
        print(f"  lambda = {p.eigenvalue:+.4f}  {p.stability:<11s} "
              f"basin {p.occurrences / 500:5.1%}  residual {p.residual:.1e}")

    all_lams = sorted(
        {round(p.eigenvalue, 4) for p in pairs_max}
        | {round(p.eigenvalue, 4) for p in pairs_min}
    )
    print(f"\ndistinct |lambda| values reached: {len(all_lams)} "
          f"(odd order: (lambda, x) mirrors (-lambda, -x))")

    print("\n=== shift strategy comparison (same 20 starting vectors) ===")
    rows = []
    for label, runner in [
        ("alpha = 0 (unshifted S-HOPM)",
         lambda x0: repro.solve(tensor, starts=x0, alpha=0.0,
                                tol=1e-12, max_iters=5000)),
        (f"alpha = {alpha:.2f} (conservative)",
         lambda x0: repro.solve(tensor, starts=x0, alpha=alpha,
                                tol=1e-12, max_iters=5000)),
        ("adaptive (GEAP-style)",
         lambda x0: repro.solve(tensor, starts=x0, adaptive=True,
                                tol=1e-12, max_iters=5000)),
    ]:
        iters, converged = [], 0
        for seed in range(20):
            res = runner(random_unit_vector(3, rng=seed)).result
            if res.converged:
                converged += 1
                iters.append(res.iterations)
        mean_iters = np.mean(iters) if iters else float("nan")
        rows.append((label, converged, mean_iters))
        print(f"  {label:32s} converged {converged:2d}/20, "
              f"mean iterations {mean_iters:7.1f}")

    print("\n(the paper, Section V-A: the shift balances convergence "
          "guarantees against time-to-completion)")


if __name__ == "__main__":
    main()
