"""DW-MRI nerve-fiber detection — the paper's motivating application
(Section IV), end to end on a synthetic phantom.

Pipeline:
  1. synthesize a 32x32 voxel grid (1024 voxels, like the paper's test
     set): single-fiber voxels plus a band of crossing fibers at 75 deg;
  2. sample each voxel's apparent diffusion coefficient on 32 gradient
     directions (with measurement noise) and least-squares fit an order-4
     symmetric tensor per voxel (15 unique values from >= 15 measurements);
  3. run batched multistart SS-HOPM (alpha = 0, 128 starts, the paper's
     configuration) to find each tensor's positive-stable eigenpairs =
     local ADC maxima = fiber directions;
  4. score against ground truth and draw the detected fiber map.

Run:  python examples/mri_fiber_detection.py
"""

import time

import numpy as np

from repro.mri import evaluate_detection, extract_fibers_batch, make_phantom


def fiber_glyph(directions: np.ndarray) -> str:
    """One-character glyph for a voxel's fiber content: orientation of a
    single fiber (in-plane), 'X' for crossings, '.' for none."""
    if directions.shape[0] == 0:
        return "."
    if directions.shape[0] >= 2:
        return "X"
    d = directions[0]
    angle = np.degrees(np.arctan2(d[1], d[0])) % 180.0
    if angle < 22.5 or angle >= 157.5:
        return "-"
    if angle < 67.5:
        return "/"
    if angle < 112.5:
        return "|"
    return "\\"


def main():
    rows = cols = 32
    print(f"synthesizing {rows * cols}-voxel phantom "
          "(order-4 tensors, 32 gradients, 2% noise)...")
    t0 = time.perf_counter()
    phantom = make_phantom(rows=rows, cols=cols, num_gradients=32,
                           crossing_angle_deg=75.0, noise_sigma=0.02, rng=42)
    print(f"  built + fitted in {time.perf_counter() - t0:.2f}s; "
          f"tensor batch {phantom.tensors.values.shape}")

    print("running batched multistart SS-HOPM (128 starts/voxel, alpha=0)...")
    t0 = time.perf_counter()
    fibers = extract_fibers_batch(phantom.tensors, num_starts=128, alpha=0.0, rng=7)
    dt = time.perf_counter() - t0
    total_problems = rows * cols * 128
    print(f"  solved {total_problems} eigenproblem instances in {dt:.2f}s "
          f"({total_problems / dt:,.0f} SS-HOPM runs/s)\n")

    rep = evaluate_detection([f.directions for f in fibers], phantom.true_directions)
    print("detection quality vs ground truth:")
    print(f"  voxels with correct fiber count : {rep.correct_count_fraction:.1%}")
    print(f"  mean angular error              : {rep.mean_angular_error_deg:.2f} deg")
    print(f"  matched / false pos / missed    : "
          f"{rep.matched} / {rep.false_positives} / {rep.misses}")
    for count, (vox, ok, err) in rep.by_fiber_count.items():
        label = "single-fiber" if count == 1 else f"{count}-fiber"
        print(f"  {label:13s}: {ok}/{vox} count-correct, "
              f"{err:.2f} deg mean error")

    print("\ndetected fiber map ('X' = crossing region):")
    for r in range(rows):
        line = "".join(
            fiber_glyph(fibers[phantom.voxel_index(r, c)].directions)
            for c in range(cols)
        )
        print("  " + line)


if __name__ == "__main__":
    main()
