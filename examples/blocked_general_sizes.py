"""Blocked kernels for general tensor sizes — the paper's future work, live.

Section VI: "we hope to be able to attain the same performance reported
here for tensors of general size using register blocking and loop
unrolling. The main implementation challenges will be to classify the
various shapes of register blocks that arise (for each order m) so that
each shape may be handled separately."

This example (1) enumerates those block shapes for several orders,
(2) shows the block decomposition of a moderately large symmetric tensor,
(3) times blocked vs per-entry evaluation across growing dimension, and
(4) runs SS-HOPM on a tensor far beyond the unrollable regime.

Run:  python examples/blocked_general_sizes.py
"""

import time

import numpy as np

from repro.core import sshopm
from repro.kernels import (
    ax_m_blocked,
    ax_m_precomputed,
    block_shapes,
    blocking_plan,
)
from repro.symtensor import random_symmetric_tensor
from repro.util.asciiplot import ascii_bars
from repro.util.combinatorics import num_unique_entries


def main():
    print("=== block shapes per order (Section VI's classification) ===")
    for m in (2, 3, 4, 6):
        shapes = block_shapes(m)
        print(f"  m={m}: {len(shapes):2d} shapes: {shapes}")

    print("\n=== decomposition of R^[4,24] with chunk size 6 ===")
    plan = blocking_plan(4, 24, 6)
    print(f"  {num_unique_entries(4, 24)} unique values -> "
          f"{plan.num_blocks} blocks over {plan.num_chunks} chunks")
    by_shape: dict = {}
    for blk in plan.blocks:
        key = tuple(sorted(blk.orders, reverse=True))
        entry = by_shape.setdefault(key, [0, 0])
        entry[0] += 1
        entry[1] += blk.gather.size
    for shape, (count, entries) in sorted(by_shape.items(), reverse=True):
        print(f"  shape {str(shape):<14s} {count:3d} blocks, {entries:6d} entries")

    print("\n=== A x^m wall-clock: blocked vs flat per-entry loop ===")
    labels, speedups = [], []
    for n in (6, 12, 24, 48):
        tensor = random_symmetric_tensor(4, n, rng=0)
        x = np.random.default_rng(1).normal(size=n)
        p = blocking_plan(4, n, min(6, n))
        ax_m_blocked(tensor, x, plan=p)  # warm
        ax_m_precomputed(tensor, x)
        t0 = time.perf_counter()
        for _ in range(5):
            yb = ax_m_blocked(tensor, x, plan=p)
        tb = (time.perf_counter() - t0) / 5
        t0 = time.perf_counter()
        yf = ax_m_precomputed(tensor, x)
        tf = time.perf_counter() - t0
        assert np.isclose(yb, yf)
        labels.append(f"n={n} (U={num_unique_entries(4, n)})")
        speedups.append(tf / tb)
        print(f"  n={n:3d}: blocked {tb * 1e3:8.3f} ms, flat {tf * 1e3:8.3f} ms, "
              f"speedup {tf / tb:6.1f}x")
    print("\n" + ascii_bars(labels, speedups, unit="x"))

    print("\n=== SS-HOPM on R^[4,32] (52,360 unique values) ===")
    tensor = random_symmetric_tensor(4, 32, rng=2)
    p32 = blocking_plan(4, 32, 8)
    # a practical shift: the conservative provable bound scales with the
    # Frobenius norm (huge at this size and painfully slow); probe the form
    # on a few random unit vectors instead and take a comfortable multiple
    from repro.kernels.dispatch import KernelPair
    from repro.kernels.blocked import ax_m1_blocked
    from repro.util.rng import random_unit_vectors

    pair = KernelPair(
        "blocked",
        lambda tt, x: ax_m_blocked(tt, x, plan=p32),
        lambda tt, x: ax_m1_blocked(tt, x, plan=p32),
    )
    probes = random_unit_vectors(20, 32, rng=5)
    alpha = 3.0 * max(abs(pair.ax_m(tensor, q)) for q in probes)
    t0 = time.perf_counter()
    res = sshopm(tensor, alpha=alpha, kernels=pair, rng=3, tol=1e-10, max_iters=4000)
    dt = time.perf_counter() - t0
    print(f"  probe-based shift alpha = {alpha:.2f}")
    print(f"  lambda = {res.eigenvalue:+.6f} in {res.iterations} iterations "
          f"({dt:.2f}s), residual {res.residual:.2e}, converged={res.converged}")
    print("  (full unrolling at this size would emit a ~52k-term source "
          "file; blocking keeps per-shape kernels tiny)")


if __name__ == "__main__":
    main()
