"""Symmetric tensor algebra: rank-1 approximation, decomposition, and the
spherical-harmonics correspondence.

The paper's Section VI: "the techniques for exploiting symmetry may be
extended to other computations involving symmetric tensors."  This example
exercises those extensions:

  1. best symmetric rank-1 approximation via SS-HOPM (the Kofidis-Regalia /
     De Lathauwer problem — the paper's references [2] and [10]);
  2. exact recovery of an orthogonal (odeco) decomposition by greedy
     rank-1 deflation;
  3. the even-spherical-harmonics <-> symmetric-tensor isomorphism of
     Section IV (reference [6]), round-tripped on a diffusion profile;
  4. the convergence theory behind shift selection (which eigenpairs
     attract, at which minimal shifts, at what rates).

Run:  python examples/tensor_algebra.py
"""

import numpy as np

from repro.core import (
    analyze_fixed_point,
    find_eigenpairs,
    minimal_attracting_shift,
    suggested_shift,
)
from repro.mri import fit_sh, sh_to_tensor, tensor_to_sh
from repro.mri.fit import adc_profile
from repro.mri.gradients import gradient_directions
from repro.symtensor import (
    best_rank_one,
    greedy_rank_r,
    inner_product,
    random_odeco_tensor,
    random_symmetric_tensor,
)


def rank_one_section():
    print("=== best symmetric rank-1 approximation (SS-HOPM) ===")
    tensor = random_symmetric_tensor(4, 3, rng=5)
    approx = best_rank_one(tensor, num_starts=96, rng=6)
    print(f"  ||A||_F = {tensor.frobenius_norm():.4f}")
    print(f"  lambda* = {approx.weight:+.4f}, x* = "
          f"{np.array2string(approx.vector, precision=4)}")
    print(f"  residual {approx.residual_norm:.4f} "
          f"({approx.relative_error:.1%} relative)")
    # the variational identity: <A, x^(x)m> = A x^m = lambda at an eigenpair
    check = inner_product(tensor, approx.tensor(4)) / approx.weight
    print(f"  <A, x*^(x)4> / lambda* = {check:.6f}  (equals lambda*: "
          "the rank-1 problem is max |A x^m|)\n")


def odeco_section():
    print("=== greedy deflation recovers an orthogonal decomposition ===")
    tensor, basis, weights = random_odeco_tensor(4, 3, rng=7)
    print(f"  planted weights: {np.array2string(weights, precision=4)}")
    terms, residual = greedy_rank_r(tensor, 3, rng=8)
    found = np.array([t.weight for t in terms])
    print(f"  recovered      : {np.array2string(found, precision=4)}")
    print(f"  final residual : {residual.frobenius_norm():.2e}")
    for term, u in zip(terms, basis):
        print(f"    |<x_i, u_i>| = {abs(term.vector @ u):.8f}")
    print()


def harmonics_section():
    print("=== spherical harmonics <-> symmetric tensor (Section IV) ===")
    tensor = random_symmetric_tensor(4, 3, rng=9)
    coeffs = tensor_to_sh(tensor)
    back = sh_to_tensor(coeffs, 4)
    print(f"  order-4 tensor (15 values) <-> 15 even-SH coefficients")
    print(f"  round-trip error: {np.abs(back.values - tensor.values).max():.2e}")
    # fit a sampled profile both ways
    g = gradient_directions(32, rng=10)
    d = adc_profile(tensor, g)
    via_sh = sh_to_tensor(fit_sh(g, d, degree=4), 4)
    print(f"  SH-route fit error vs truth: "
          f"{np.abs(via_sh.values - tensor.values).max():.2e}")
    by_degree = {0: coeffs[0:1], 2: coeffs[1:6], 4: coeffs[6:15]}
    for l, c in by_degree.items():
        print(f"  energy at degree {l}: {np.sum(np.asarray(c)**2):.4f}")
    print()


def theory_section():
    print("=== which eigenpairs attract, and how fast ===")
    tensor = random_symmetric_tensor(4, 3, rng=11)
    alpha_cons = suggested_shift(tensor)
    pairs = find_eigenpairs(tensor, num_starts=128, alpha=alpha_cons, rng=12,
                            tol=1e-14, max_iters=6000)
    print(f"  conservative provable shift: {alpha_cons:.2f}")
    print(f"  {'lambda':>9s} {'stability':<12s} {'alpha_min':>10s} "
          f"{'rate@cons':>10s}")
    for p in pairs:
        a_min = minimal_attracting_shift(tensor, p.eigenvalue, p.eigenvector)
        ana = analyze_fixed_point(tensor, p.eigenvalue, p.eigenvector, alpha_cons)
        a_str = f"{a_min:10.3f}" if np.isfinite(a_min) else "       inf"
        print(f"  {p.eigenvalue:+9.4f} {p.stability:<12s} {a_str} "
              f"{ana.rate:10.4f}")
    print("  (alpha_min far below the provable bound is why adaptive "
          "shifting converges faster)")


def main():
    rank_one_section()
    odeco_section()
    harmonics_section()
    theory_section()


if __name__ == "__main__":
    main()
