"""GPU execution-model explorer — the simulated Tesla C2050 substrate.

Reproduces the paper's performance story interactively:
  * Table III: the eight implementations' rates and runtimes,
  * Figure 5: throughput vs number of tensors (ASCII log-scale plot),
  * Section V-E: the occupancy falloff for larger tensors,
  * Section V-B: multi-GPU projection.

Everything here is *modeled* (this machine has no GPU); see DESIGN.md for
the substitution rationale and EXPERIMENTS.md for paper-vs-model deltas.

Run:  python examples/gpu_performance_model.py
"""

import numpy as np

from repro.gpu import (
    TESLA_C2050,
    compute_occupancy,
    predict_sshopm,
    sshopm_launch,
)
from repro.parallel import predict_cpu_sshopm

ITERS = 40.0  # typical SS-HOPM iterations/pair on the application workload


def total_flops(T=1024, V=128, iters=ITERS):
    launch = sshopm_launch(4, 3, num_starts=V, variant="unrolled")
    return T * V * iters * launch.flops_per_thread_iter


def table3():
    print("=== Table III (modeled) — m=4, n=3, T=1024, V=128 ===")
    print(f"{'config':<18s}{'GFLOPS':>10s}{'ms':>10s}{'vs seq':>9s}")
    flops = total_flops()
    for variant in ("general", "unrolled"):
        seq = predict_cpu_sshopm(flops, variant=variant, cores=1)
        for cores in (1, 4, 8):
            p = predict_cpu_sshopm(flops, variant=variant, cores=cores)
            print(f"CPU-{cores} {variant:<10s}{p.gflops:>10.2f}"
                  f"{p.seconds * 1e3:>10.1f}{seq.seconds / p.seconds:>9.2f}")
        g = predict_sshopm(iterations=ITERS, variant=variant)
        print(f"GPU   {variant:<10s}{g.gflops:>10.2f}"
              f"{g.seconds * 1e3:>10.1f}{seq.seconds / g.seconds:>9.2f}")
    print("paper anchors: GPU unrolled 317.83 GFLOPS (31% peak), 18.7x "
          "over GPU general\n")


def figure5():
    print("=== Figure 5 (modeled) — GFLOPS vs number of tensors (log y) ===")
    ts = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    series = {}
    for T in ts:
        flops = total_flops(T=T)
        series[T] = {
            "gpu": predict_sshopm(num_tensors=T, iterations=ITERS).gflops,
            "cpu8": predict_cpu_sshopm(flops, variant="unrolled", cores=8).gflops,
            "cpu4": predict_cpu_sshopm(flops, variant="unrolled", cores=4).gflops,
            "cpu1": predict_cpu_sshopm(flops, variant="unrolled", cores=1).gflops,
        }
    # ASCII plot: rows = log-spaced GFLOPS levels, columns = T values
    levels = np.geomspace(1, 400, 24)[::-1]
    marks = {"gpu": "G", "cpu8": "8", "cpu4": "4", "cpu1": "1"}
    print(f"{'GFLOPS':>8s} " + "".join(f"{T:>6d}" for T in ts))
    for lo, hi in zip(levels[1:], levels[:-1]):
        row = f"{hi:>8.1f} "
        for T in ts:
            cell = " "
            for key, mark in marks.items():
                if lo <= series[T][key] < hi:
                    cell = mark
            row += f"{cell:>6s}"
        print(row)
    print("          (G = GPU, 8/4/1 = CPU cores; all unrolled kernels)\n")


def occupancy_falloff():
    print("=== Section V-E (modeled) — occupancy falloff with tensor size ===")
    print(f"{'size':<10s}{'regs/thr':>9s}{'blk/SM':>8s}{'limit':>12s}"
          f"{'GFLOPS':>9s}{'frac':>7s}")
    for m, n in [(4, 3), (4, 4), (4, 5), (4, 6), (4, 7), (6, 4), (6, 5)]:
        launch = sshopm_launch(m, n, variant="unrolled")
        occ = compute_occupancy(TESLA_C2050, launch)
        p = predict_sshopm(m=m, n=n, iterations=ITERS)
        print(f"m={m} n={n:<4d}{launch.registers_per_thread:>9d}"
              f"{occ.blocks_per_sm:>8d}{occ.limiting_factor:>12s}"
              f"{p.gflops:>9.1f}{p.fraction_of_peak:>7.1%}")
    print("paper: decreased performance past ~order 4 / dimension 5\n")


def multi_gpu():
    print("=== Section V-B — multi-GPU projection (T=1024) ===")
    base = predict_sshopm(iterations=ITERS)
    for d in (1, 2, 4, 8):
        p = predict_sshopm(iterations=ITERS, num_devices=d)
        print(f"  {d} x C2050: {p.gflops:8.1f} GFLOPS, "
              f"{p.seconds * 1e3:6.2f} ms  (speedup {base.seconds / p.seconds:.2f}x)")


def main():
    table3()
    figure5()
    occupancy_falloff()
    multi_gpu()


if __name__ == "__main__":
    main()
