# Developer entry points.  Tier-1 is the gate every PR must keep green
# (see ROADMAP.md); it runs the instrumentation smoke first so a broken
# recorder fails fast before the long solver suites, and finishes with a
# `repro report` smoke over the checked-in trace so the viewer can never
# silently rot.

PYTHONPATH := src
export PYTHONPATH

# bench-compare inputs: make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json
OLD ?= BENCH_old.json
NEW ?= BENCH_new.json
THRESHOLD ?= 0.2

.PHONY: test api-check codegen-check smoke-instrument smoke-report chaos bench bench-overhead bench-smoke bench-compare fleet-bench events-check serve-check solver-check

test: smoke-instrument api-check codegen-check  ## tier-1: instrumentation smoke, then the full suite
	python -m pytest -x -q
	$(MAKE) smoke-report
	$(MAKE) events-check
	$(MAKE) chaos
	$(MAKE) serve-check
	$(MAKE) solver-check

api-check:  ## public API must match the checked-in snapshot
	python -m pytest -q tests/test_api_surface.py

codegen-check:  ## every (variant, backend) emitter must agree with the reference at 1e-10
	python -m pytest -q tests/test_codegen_agreement.py

chaos:  ## fault-injection suite (deterministic; seed pinned)
	REPRO_CHAOS_SEED=20110516 python -m pytest -q tests/test_chaos.py

smoke-instrument:  ## fast gate on the observability substrate
	python -m pytest -q tests/test_instrument.py

smoke-report:  ## `repro report` must render the checked-in pipeline trace
	python -m repro.cli report benchmarks/results/mri_pipeline_trace.trace.json > /dev/null
	@echo "repro report smoke OK"

bench:  ## paper reproduction benchmarks (slow)
	python -m pytest benchmarks/ --benchmark-only -q

bench-overhead:  ## assert the <5% disabled-instrumentation budget
	python -m pytest -q benchmarks/bench_instrument_overhead.py

events-check:  ## event stream: <5% disabled budget + every line schema-valid
	python -m pytest -q benchmarks/bench_events_overhead.py

fleet-bench:  ## process-vs-thread fleet executor gate (>=2x floor, O(result) IPC)
	python -m pytest -q benchmarks/bench_process_fleet.py

serve-check:  ## serve control-plane latency budgets (admission, HTTP, drain)
	python -m pytest -q benchmarks/bench_serve.py

solver-check:  ## solver zoo: cross-method agreement + chaos faults on geap/qrst
	python -m pytest -q tests/test_solver_zoo.py

bench-smoke:  ## fast benchmark subset -> BENCH_<stamp>.json at repo root
	python -m repro.bench.harness --timeout 120

bench-compare:  ## regression gate: make bench-compare OLD=... NEW=...
	python -m repro.cli bench-compare $(OLD) $(NEW) --threshold $(THRESHOLD)
