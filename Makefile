# Developer entry points.  Tier-1 is the gate every PR must keep green
# (see ROADMAP.md); it runs the instrumentation smoke first so a broken
# recorder fails fast before the long solver suites.

PYTHONPATH := src
export PYTHONPATH

.PHONY: test smoke-instrument bench bench-overhead

test: smoke-instrument  ## tier-1: instrumentation smoke, then the full suite
	python -m pytest -x -q

smoke-instrument:  ## fast gate on the observability substrate
	python -m pytest -q tests/test_instrument.py

bench:  ## paper reproduction benchmarks (slow)
	python -m pytest benchmarks/ --benchmark-only -q

bench-overhead:  ## assert the <5% disabled-instrumentation budget
	python -m pytest -q benchmarks/bench_instrument_overhead.py
